package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/gptcache"
	"repro/internal/llmsim"
	"repro/internal/metrics"
)

// Fig4Result is the user-study summary of Figure 4.
type Fig4Result struct {
	Totals     []int
	Duplicates []int
	MeanRatio  float64
}

// Fig4 regenerates the 20 participant streams and runs the local analysis,
// reproducing the published per-participant totals and duplicate counts.
func Fig4(lab *Lab) *Fig4Result {
	streams := dataset.GenerateUserStudy(lab.Cfg.Corpus)
	res := dataset.AnalyzeStudy(streams)
	return &Fig4Result{
		Totals:     res.Totals,
		Duplicates: res.Duplicates,
		MeanRatio:  res.MeanDupRatio(),
	}
}

// String renders the per-participant bars of Figure 4 as a table.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: ChatGPT user study (20 participants)\n\n")
	fmt.Fprintf(&b, "  %-12s %8s %11s %7s\n", "Participant", "Queries", "Duplicates", "Ratio")
	for i := range r.Totals {
		fmt.Fprintf(&b, "  %-12d %8d %11d %6.1f%%\n", i+1, r.Totals[i], r.Duplicates[i],
			100*float64(r.Duplicates[i])/float64(r.Totals[i]))
	}
	fmt.Fprintf(&b, "\n  mean duplicate ratio: %.1f%% (paper: ≈31%%)\n", 100*r.MeanRatio)
	return b.String()
}

// Fig5Series is one scenario's per-query response times.
type Fig5Series struct {
	Name      string
	Latencies []time.Duration
}

// Fig5Result holds the three response-time series of Figure 5 over the
// 100-probe visualisation subset (70 unique then 30 duplicates).
type Fig5Result struct {
	Series []Fig5Series
	// DupStart is the index where duplicate probes begin (70).
	DupStart int
}

// Fig5 measures response times for the Llama-2-sim service without a
// cache, behind GPTCache, and behind MeanCache.
func Fig5(lab *Lab) *Fig5Result {
	w := lab.Workload()
	probes := w.OrderedSubset(70, 30)
	res := &Fig5Result{DupStart: 70}

	// Scenario 1: no cache.
	llm := llmsim.New(llmsim.DefaultConfig())
	var noCache []time.Duration
	for _, p := range probes {
		_, took := llm.Query(p.Text)
		noCache = append(noCache, took)
	}
	res.Series = append(res.Series, Fig5Series{Name: "Llama 2", Latencies: noCache})

	// Scenarios 2–3: populated caches, probes replayed end-to-end. The
	// baseline pays a server round trip on every query.
	systems := []System{
		NewGPTCacheSystem("Llama 2+GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 20*time.Millisecond),
		NewMeanCacheSystem("Llama 2+MeanCache", lab.Trained(embed.MPNetSim).Model, lab.Trained(embed.MPNetSim).Tau),
	}
	cached := make([]dataset.CtxQuery, len(w.Cached))
	for i, q := range w.Cached {
		cached[i] = dataset.CtxQuery{Text: q, DupOf: -1}
	}
	for _, sys := range systems {
		sysLLM := llmsim.New(llmsim.DefaultConfig())
		sys.Populate(cached, sysLLM)
		var lats []time.Duration
		for _, p := range probes {
			_, lat := sys.Probe(p.Text, nil, sysLLM, true)
			lats = append(lats, lat)
		}
		res.Series = append(res.Series, Fig5Series{Name: sys.Name(), Latencies: lats})
	}
	return res
}

// String renders summary statistics per scenario and region.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: response times, 100 probes (0-69 unique, 70-99 duplicate)\n\n")
	fmt.Fprintf(&b, "  %-20s %14s %14s\n", "Scenario", "mean(unique)", "mean(dup)")
	for _, s := range r.Series {
		var uniq, dup metrics.LatencyRecorder
		for i, lat := range s.Latencies {
			if i < r.DupStart {
				uniq.Record(lat)
			} else {
				dup.Record(lat)
			}
		}
		fmt.Fprintf(&b, "  %-20s %14v %14v\n", s.Name,
			uniq.Mean().Round(time.Millisecond), dup.Mean().Round(time.Millisecond))
	}
	return b.String()
}

// Fig6Result is the per-query hit/miss label strip of Figure 6.
type Fig6Result struct {
	Real      []bool // true = should hit
	GPTCache  []bool
	MeanCache []bool
}

// Fig6 replays the 100-probe subset and records each system's decisions.
func Fig6(lab *Lab) *Fig6Result {
	w := lab.Workload()
	probes := w.OrderedSubset(70, 30)
	res := &Fig6Result{}
	for _, p := range probes {
		res.Real = append(res.Real, p.DupOf >= 0)
	}
	cached := make([]dataset.CtxQuery, len(w.Cached))
	for i, q := range w.Cached {
		cached[i] = dataset.CtxQuery{Text: q, DupOf: -1}
	}
	run := func(sys System) []bool {
		llm := llmsim.New(llmsim.DefaultConfig())
		sys.Populate(cached, llm)
		var preds []bool
		for _, p := range probes {
			hit, _ := sys.Probe(p.Text, nil, llm, true)
			preds = append(preds, hit)
		}
		return preds
	}
	res.GPTCache = run(NewGPTCacheSystem("GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 0))
	res.MeanCache = run(NewMeanCacheSystem("MeanCache", lab.Trained(embed.MPNetSim).Model, lab.Trained(embed.MPNetSim).Tau))
	return res
}

// String renders the three label strips plus false-hit counts on the
// unique region.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: hit/miss labels, 100 probes (H = hit, . = miss)\n\n")
	strip := func(name string, labels []bool) {
		fmt.Fprintf(&b, "  %-10s ", name)
		for _, hit := range labels {
			if hit {
				b.WriteByte('H')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	strip("Real", r.Real)
	strip("GPTCache", r.GPTCache)
	strip("MeanCache", r.MeanCache)
	fh := func(pred []bool) int {
		n := 0
		for i, hit := range pred {
			if hit && !r.Real[i] {
				n++
			}
		}
		return n
	}
	fmt.Fprintf(&b, "\n  false hits on unique probes: GPTCache=%d MeanCache=%d\n",
		fh(r.GPTCache), fh(r.MeanCache))
	return b.String()
}

// Fig8Result carries the contextual label strips (Figure 8) and confusion
// matrices (Figure 9).
type Fig8Result struct {
	// NonDup are outcomes for probes that must all miss (Figure 8a);
	// Dup for probes that should hit (Figure 8b).
	NonDupReal, NonDupGPT, NonDupMean []bool
	DupReal, DupGPT, DupMean          []bool
	GPTMatrix, MeanMatrix             metrics.Confusion
}

// Fig8 replays the contextual workload through both systems.
func Fig8(lab *Lab) *Fig8Result {
	w := lab.CtxWorkload()
	res := &Fig8Result{}

	run := func(sys System) []ProbeOutcome {
		llm := llmsim.New(llmsim.DefaultConfig())
		return RunContextual(sys, w, llm)
	}
	gpt := run(NewGPTCacheSystem("GPTCache", lab.UntrainedModel(embed.AlbertSim), gptcache.DefaultTau, 0))
	mean := run(NewMeanCacheSystem("MeanCache", lab.Trained(embed.MPNetSim).Model, lab.Trained(embed.MPNetSim).Tau))
	res.GPTMatrix = Confusion(gpt)
	res.MeanMatrix = Confusion(mean)
	for i, o := range gpt {
		if o.Dup {
			res.DupReal = append(res.DupReal, true)
			res.DupGPT = append(res.DupGPT, o.Hit)
			res.DupMean = append(res.DupMean, mean[i].Hit)
		} else {
			res.NonDupReal = append(res.NonDupReal, false)
			res.NonDupGPT = append(res.NonDupGPT, o.Hit)
			res.NonDupMean = append(res.NonDupMean, mean[i].Hit)
		}
	}
	return res
}

// String renders Figures 8 and 9 as counts plus matrices.
func (r *Fig8Result) String() string {
	count := func(v []bool) int {
		n := 0
		for _, x := range v {
			if x {
				n++
			}
		}
		return n
	}
	var b strings.Builder
	b.WriteString("Figures 8-9: contextual queries\n\n")
	fmt.Fprintf(&b, "(a) %d non-duplicate probes (all should miss): false hits GPTCache=%d MeanCache=%d\n",
		len(r.NonDupReal), count(r.NonDupGPT), count(r.NonDupMean))
	fmt.Fprintf(&b, "(b) %d duplicate probes (all should hit):  true hits  GPTCache=%d MeanCache=%d\n\n",
		len(r.DupReal), count(r.DupGPT), count(r.DupMean))
	fmt.Fprintf(&b, "Figure 9 (a) MeanCache\n%s\n\n(b) GPTCache\n%s\n", r.MeanMatrix, r.GPTMatrix)
	return b.String()
}
