package store_test

// Fault-injection suite for the store, driven through the faultfs seam:
// write failures and short writes must wedge rather than corrupt,
// fsyncgate must wedge permanently, ENOSPC must leave the log
// reopenable, mid-log bit rot must salvage the records beyond it, and
// Compact must stay durable at every crash boundary.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"

	"repro/internal/store"
	"repro/internal/store/faultfs"
)

const logPath = "tenants/wal.cache"

func mustOpen(t *testing.T, fs *faultfs.FS) *store.Store {
	t.Helper()
	st, err := store.OpenFS(fs, logPath)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	return st
}

func mustPut(t *testing.T, st *store.Store, key, val string) {
	t.Helper()
	if err := st.Put(key, []byte(val)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

// dump returns the full live state of the store.
func dump(t *testing.T, st *store.Store) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, k := range st.Keys() {
		v, err := st.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		out[k] = string(v)
	}
	return out
}

func wantState(t *testing.T, st *store.Store, want map[string]string) {
	t.Helper()
	got := dump(t, st)
	if len(got) != len(want) {
		t.Fatalf("state mismatch: got %d keys %v, want %d keys %v", len(got), got, len(want), want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: got %q, want %q", k, got[k], v)
		}
	}
}

// recSize is the on-disk size of one record.
func recSize(key, val string) int64 { return 9 + int64(len(key)) + int64(len(val)) + 4 }

func TestWriteFailureWedges(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	mustPut(t, st, "a", "alpha")
	mustPut(t, st, "b", "beta")

	fs.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: "wal.cache"})
	if err := st.Put("c", []byte("gamma")); err == nil {
		t.Fatal("Put with injected write fault succeeded")
	}
	// Every subsequent mutation fails with ErrWedged — the writer may
	// hold partial record bytes and must never flush them.
	for name, op := range map[string]func() error{
		"Put":     func() error { return st.Put("d", []byte("delta")) },
		"Delete":  func() error { return st.Delete("a") },
		"Sync":    st.Sync,
		"Compact": st.Compact,
	} {
		if err := op(); !errors.Is(err, store.ErrWedged) {
			t.Fatalf("%s on wedged store: got %v, want ErrWedged", name, err)
		}
	}
	if st.Wedged() == nil {
		t.Fatal("Wedged() = nil on a wedged store")
	}
	// Reads keep working on the wedged store.
	if v, err := st.Get("a"); err != nil || string(v) != "alpha" {
		t.Fatalf("Get on wedged store: %q, %v", v, err)
	}
	st.Close()

	// Reopen heals: pre-fault data intact, no garbage mid-log.
	st2 := mustOpen(t, fs)
	defer st2.Close()
	if rep := st2.Report(); rep.Dirty() {
		t.Fatalf("reopen after in-buffer write failure found damage: %+v", rep)
	}
	wantState(t, st2, map[string]string{"a": "alpha", "b": "beta"})
	mustPut(t, st2, "c", "gamma") // and the store writes again
}

func TestShortWriteTornTailTruncated(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	mustPut(t, st, "a", "alpha")

	// The next flush lands all but 3 bytes: a torn record on disk.
	fs.Inject(faultfs.Fault{Op: faultfs.OpWrite, Path: "wal.cache", ShortBy: 3})
	if err := st.Put("b", []byte("beta")); err == nil {
		t.Fatal("short write reported success")
	}
	if err := st.Put("x", []byte("y")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("Put after short write: got %v, want ErrWedged", err)
	}
	st.Close()

	st2 := mustOpen(t, fs)
	defer st2.Close()
	rep := st2.Report()
	if rep.TailTruncated == 0 {
		t.Fatalf("expected torn tail to be truncated, report %+v", rep)
	}
	if rep.CorruptRegions != 0 {
		t.Fatalf("torn tail misclassified as mid-log corruption: %+v", rep)
	}
	wantState(t, st2, map[string]string{"a": "alpha"})
}

func TestFsyncFailureWedgesPermanently(t *testing.T) {
	fs := faultfs.New()
	fs.Capture(true)
	st := mustOpen(t, fs)
	mustPut(t, st, "a", "alpha")
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	mustPut(t, st, "b", "beta")

	// fsyncgate: the fsync fails and the kernel drops the dirty pages
	// while marking them clean.
	fs.Inject(faultfs.Fault{Op: faultfs.OpSync, Path: "wal.cache", DropBuffered: true})
	if err := st.Sync(); err == nil {
		t.Fatal("Sync with injected fsync fault succeeded")
	}
	// A retried Sync must NOT report success — the dropped pages can
	// never reach disk, so claiming durability would be a lie.
	if err := st.Sync(); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("Sync after failed fsync: got %v, want ErrWedged", err)
	}

	// Reads still serve the pre-fault in-memory state.
	if v, err := st.Get("b"); err != nil || string(v) != "beta" {
		t.Fatalf("Get on wedged store: %q, %v", v, err)
	}

	// Power loss now: only the synced prefix survives — the dropped
	// pages are gone, and the store was right not to claim otherwise.
	cps := fs.CrashPoints()
	st2 := mustOpen(t, faultfs.Restore(cps[len(cps)-1], nil))
	defer st2.Close()
	wantState(t, st2, map[string]string{"a": "alpha"})
}

func TestENOSPCLeavesStoreReopenable(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	mustPut(t, st, "a", "alpha")
	mustPut(t, st, "b", "beta")

	fs.SetSpace(4) // the next record cannot fit
	if err := st.Put("c", bytes.Repeat([]byte("x"), 64)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put on full disk: got %v, want ENOSPC", err)
	}
	if err := st.Put("d", []byte("delta")); !errors.Is(err, store.ErrWedged) {
		t.Fatalf("Put after ENOSPC: got %v, want ErrWedged", err)
	}
	// Pre-fault data still readable in place...
	if v, err := st.Get("a"); err != nil || string(v) != "alpha" {
		t.Fatalf("Get on wedged store: %q, %v", v, err)
	}
	st.Close()

	// ...and the store reopens cleanly on the still-full disk (the torn
	// record is truncated, which frees its bytes rather than needing any).
	st2 := mustOpen(t, fs)
	wantState(t, st2, map[string]string{"a": "alpha", "b": "beta"})
	// Still no room to grow.
	if err := st2.Put("c", bytes.Repeat([]byte("x"), 64)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put on full disk after reopen: got %v, want ENOSPC", err)
	}
	st2.Close()

	// Space frees; the next incarnation writes again.
	fs.AddSpace(1 << 20)
	st3 := mustOpen(t, fs)
	defer st3.Close()
	wantState(t, st3, map[string]string{"a": "alpha", "b": "beta"})
	mustPut(t, st3, "c", "gamma")
}

func TestMidLogCorruptionSalvagesTail(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	mustPut(t, st, "key1", "value-one")
	mustPut(t, st, "key2", "value-two")
	mustPut(t, st, "key3", "value-three")
	st.Close()

	// Flip a bit inside record 2's value: its CRC fails, but record 3
	// must be salvaged rather than discarded with the tail.
	off2 := recSize("key1", "value-one")
	if err := fs.FlipBit(logPath, off2+9+int64(len("key2")), 2); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}

	st2 := mustOpen(t, fs)
	rep := st2.Report()
	if rep.CorruptRegions != 1 {
		t.Fatalf("CorruptRegions = %d, want 1 (report %+v)", rep.CorruptRegions, rep)
	}
	if rep.SalvagedRecords < 1 {
		t.Fatalf("SalvagedRecords = %d, want >= 1", rep.SalvagedRecords)
	}
	if rep.CorruptSkipped != recSize("key2", "value-two") {
		t.Fatalf("CorruptSkipped = %d, want %d", rep.CorruptSkipped, recSize("key2", "value-two"))
	}
	if !rep.Dirty() {
		t.Fatal("report not Dirty after salvage")
	}
	wantState(t, st2, map[string]string{"key1": "value-one", "key3": "value-three"})

	// The store keeps working, and Compact rewrites the damage away.
	mustPut(t, st2, "key4", "value-four")
	if err := st2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st2.Close()

	st3 := mustOpen(t, fs)
	defer st3.Close()
	if rep := st3.Report(); rep.Dirty() {
		t.Fatalf("damage survived Compact: %+v", rep)
	}
	wantState(t, st3, map[string]string{
		"key1": "value-one", "key3": "value-three", "key4": "value-four",
	})
}

func TestCompactDurableAtEveryCrashPoint(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		k, v := fmt.Sprintf("key%d", i), fmt.Sprintf("value%d", i)
		mustPut(t, st, k, v)
		want[k] = v
	}
	if err := st.Delete("key3"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "key3")
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// Every crash boundary inside Compact must recover the full synced
	// state: the rewrite is fsynced before the rename and the rename is
	// made durable by a directory fsync.
	fs.Capture(true)
	if err := st.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	fs.Capture(false)
	st.Close()

	cps := fs.CrashPoints()
	if len(cps) == 0 {
		t.Fatal("no crash points captured during Compact")
	}
	for _, cp := range cps {
		rec := mustOpen(t, faultfs.Restore(cp, nil))
		if rep := rec.Report(); rep.Dirty() {
			t.Fatalf("crash at seq %d: corrupt open %+v", cp.Seq, rep)
		}
		wantState(t, rec, want)
		rec.Close()
	}
}

func TestCompactPreRenameFailureDoesNotWedge(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	defer st.Close()
	mustPut(t, st, "a", "alpha")

	// The temp-file fsync fails: Compact aborts, the old log is
	// untouched, and the store keeps serving and writing.
	fs.Inject(faultfs.Fault{Op: faultfs.OpSync, Path: ".compact"})
	if err := st.Compact(); err == nil {
		t.Fatal("Compact with failing temp fsync succeeded")
	}
	if st.Wedged() != nil {
		t.Fatalf("pre-rename Compact failure wedged the store: %v", st.Wedged())
	}
	mustPut(t, st, "b", "beta")
	wantState(t, st, map[string]string{"a": "alpha", "b": "beta"})
	if _, err := fs.ReadFile(logPath + ".compact"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted compaction left its temp file behind: %v", err)
	}
}

func TestTailGarbageSurfacedInReport(t *testing.T) {
	fs := faultfs.New()
	st := mustOpen(t, fs)
	mustPut(t, st, "a", "alpha")
	mustPut(t, st, "b", "beta")
	st.Close()

	// Append half a record header by hand: the torn tail of a crashed
	// write.
	f, err := fs.OpenFile(logPath, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if _, err := f.Write([]byte{1, 4, 0}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f.Close()

	st2 := mustOpen(t, fs)
	defer st2.Close()
	rep := st2.Report()
	if rep.TailTruncated != 3 {
		t.Fatalf("TailTruncated = %d, want 3 (report %+v)", rep.TailTruncated, rep)
	}
	if rep.Records != 2 {
		t.Fatalf("Records = %d, want 2", rep.Records)
	}
	wantState(t, st2, map[string]string{"a": "alpha", "b": "beta"})
	// The truncation physically removed the garbage: the next open is
	// clean.
	st2.Close()
	st3 := mustOpen(t, fs)
	defer st3.Close()
	if rep := st3.Report(); rep.Dirty() {
		t.Fatalf("second open still dirty: %+v", rep)
	}
}
