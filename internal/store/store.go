// Package store provides the persistent local cache storage that the paper
// delegates to Python's DiskCache: a crash-tolerant, append-only-log
// key/value store with an in-memory index.
//
// Records are length-prefixed and CRC-checked; a torn final record (partial
// write at crash) is detected and truncated on open. Deletes are tombstone
// records, so the log replays to the exact live set. Compact rewrites the
// log to reclaim space from overwritten and deleted entries.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

const (
	opPut    byte = 1
	opDelete byte = 2
)

// Store is a disk-backed key/value store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	path string
	f    *os.File
	w    *bufio.Writer
	// index maps live keys to their value offsets in the log.
	index map[string]recordRef
	// garbage counts superseded bytes, driving compaction heuristics.
	garbage int64
	size    int64
}

type recordRef struct {
	off    int64 // offset of the value bytes within the log
	length int32
}

// Open opens or creates the store at path, replaying the existing log.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s := &Store{path: path, f: f, index: make(map[string]recordRef)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking to log end: %w", err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// record layout:
//
//	op(1) keyLen(4) valLen(4) key val crc32(4 over everything before it)
func (s *Store) replay() error {
	r := bufio.NewReader(s.f)
	var off int64
	for {
		rec, key, valOff, valLen, err := readRecord(r, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: truncate to the last good record. Data
			// before this point is intact; the failed write is discarded.
			if terr := s.f.Truncate(off); terr != nil {
				return fmt.Errorf("store: truncating corrupt tail: %w", terr)
			}
			break
		}
		switch rec {
		case opPut:
			if old, ok := s.index[key]; ok {
				s.garbage += int64(old.length)
			}
			s.index[key] = recordRef{off: valOff, length: valLen}
		case opDelete:
			if old, ok := s.index[key]; ok {
				s.garbage += int64(old.length)
				delete(s.index, key)
			}
		}
		off = valOff + int64(valLen) + 4 // skip crc
	}
	s.size = off
	return nil
}

func readRecord(r *bufio.Reader, off int64) (op byte, key string, valOff int64, valLen int32, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = errors.New("store: torn header")
		}
		return
	}
	op = hdr[0]
	keyLen := int32(binary.LittleEndian.Uint32(hdr[1:5]))
	valLen = int32(binary.LittleEndian.Uint32(hdr[5:9]))
	if op != opPut && op != opDelete || keyLen < 0 || valLen < 0 || keyLen > 1<<20 || valLen > 1<<30 {
		err = errors.New("store: invalid record header")
		return
	}
	buf := make([]byte, int(keyLen)+int(valLen)+4)
	if _, err = io.ReadFull(r, buf); err != nil {
		err = errors.New("store: torn record body")
		return
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(buf[:keyLen+valLen])
	if crc.Sum32() != binary.LittleEndian.Uint32(buf[keyLen+valLen:]) {
		err = errors.New("store: checksum mismatch")
		return
	}
	key = string(buf[:keyLen])
	valOff = off + 9 + int64(keyLen)
	return
}

func appendRecord(w io.Writer, op byte, key string, val []byte) (int, error) {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n := 0
	for _, chunk := range [][]byte{hdr[:], []byte(key), val, sum[:]} {
		m, err := w.Write(chunk)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Put stores val under key, overwriting any previous value.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := appendRecord(s.w, opPut, key, val)
	if err != nil {
		return fmt.Errorf("store: appending put: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing put: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.garbage += int64(old.length)
	}
	s.index[key] = recordRef{off: s.size + 9 + int64(len(key)), length: int32(len(val))}
	s.size += int64(n)
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	val := make([]byte, ref.length)
	if _, err := s.f.ReadAt(val, ref.off); err != nil {
		return nil, fmt.Errorf("store: reading value: %w", err)
	}
	return val, nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil
	}
	n, err := appendRecord(s.w, opDelete, key, nil)
	if err != nil {
		return fmt.Errorf("store: appending delete: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing delete: %w", err)
	}
	s.garbage += int64(s.index[key].length)
	delete(s.index, key)
	s.size += int64(n)
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SizeOnDisk reports the current log size in bytes, including garbage.
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Compact rewrites the log with only live records, reclaiming garbage. The
// rewrite goes to a sibling temp file that atomically replaces the log.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmpPath := s.path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	newIndex := make(map[string]recordRef, len(s.index))
	var off int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ref := s.index[key]
		val := make([]byte, ref.length)
		if _, err := s.f.ReadAt(val, ref.off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compaction read: %w", err)
		}
		n, err := appendRecord(bw, opPut, key, val)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("store: compaction write: %w", err)
		}
		newIndex[key] = recordRef{off: off + 9 + int64(len(key)), length: ref.length}
		off += int64(n)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("store: compaction flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: closing compaction file: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: swapping compacted log: %w", err)
	}
	s.f.Close()
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening compacted log: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking compacted log: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.index = newIndex
	s.size = off
	s.garbage = 0
	return nil
}

// Sync flushes buffered writes and forces them to stable storage — the
// durability barrier a caller needs before atomically renaming a freshly
// written store over an existing one (rename-without-sync can replace a
// good file with a truncated one on OS crash).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: sync flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: final flush: %w", err)
	}
	return s.f.Close()
}
