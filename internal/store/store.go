// Package store provides the persistent local cache storage that the paper
// delegates to Python's DiskCache: a crash-tolerant, append-only-log
// key/value store with an in-memory index.
//
// Records are length-prefixed and CRC-checked. Open repairs whatever a
// crash or bit rot left behind — a torn final record is truncated, and a
// corrupt region mid-log is skipped to the next CRC-valid record boundary
// so the data beyond it is salvaged rather than discarded — and reports
// what it did through OpenReport. Deletes are tombstone records, so the
// log replays to the exact live set. Compact rewrites the log to reclaim
// space from overwritten and deleted entries, fsyncing the rewrite and
// the directory around the swap so a crash can never leave a truncated
// log where a good one stood.
//
// Write and fsync failures wedge the store: every subsequent mutation
// returns ErrWedged until the store is reopened. A failed write may leave
// partial record bytes in the write buffer or the file; appending after
// them would bury garbage mid-log, and a failed fsync may have already
// dropped the very pages it was asked to persist (the fsyncgate failure
// mode), so retrying either in place would turn one lost write into
// silent corruption. Reads keep working on a wedged store.
//
// All I/O flows through the FS seam (fs.go); faultfs injects scripted
// failures and power-fail crash points through the same interface the
// production os-backed implementation serves.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("store: key not found")

// ErrWedged marks a store poisoned by an earlier write or fsync failure:
// every mutation fails with an error wrapping it until the store is
// reopened (which truncates any torn tail and resumes from the last
// durable state). Reads still work.
var ErrWedged = errors.New("store: wedged by an earlier write failure (reopen to recover)")

const (
	opPut    byte = 1
	opDelete byte = 2

	maxKeyLen = 1 << 20
	maxValLen = 1 << 30
)

// OpenReport describes what Open found and repaired while replaying the
// log. A report with Dirty() true means the log had been damaged — by a
// torn write at crash, or by corruption of bytes already on disk — and
// Open recovered everything recoverable.
type OpenReport struct {
	// Records is the number of intact records replayed (puts and
	// delete tombstones).
	Records int
	// TailTruncated is the number of bytes dropped from the end of the
	// log because no intact record boundary followed them — the torn
	// tail of a crashed write.
	TailTruncated int64
	// CorruptRegions counts mid-log corruption regions the salvage scan
	// skipped; CorruptSkipped is the bytes they spanned. Unlike a torn
	// tail these are not truncated (records beyond them are live);
	// Compact rewrites them away.
	CorruptRegions int
	CorruptSkipped int64
	// SalvagedRecords is the number of intact records recovered beyond
	// the first corrupt region — data a truncate-at-first-error policy
	// would have discarded.
	SalvagedRecords int
}

// Dirty reports whether Open had to repair anything.
func (r OpenReport) Dirty() bool { return r.TailTruncated > 0 || r.CorruptRegions > 0 }

// Store is a disk-backed key/value store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	path string
	fs   FS
	f    File
	w    *bufio.Writer
	// index maps live keys to their value offsets in the log.
	index map[string]recordRef
	// garbage counts superseded bytes, driving compaction heuristics.
	garbage int64
	size    int64
	report  OpenReport
	// wedged is set by the first write/fsync failure; see ErrWedged.
	wedged error
	// dirSynced records that the log's directory entry has been fsynced
	// (Sync does it once): before that, an OS crash may forget a freshly
	// created log file entirely.
	dirSynced bool
}

type recordRef struct {
	off    int64 // offset of the value bytes within the log
	length int32
}

// Open opens or creates the store at path, replaying the existing log.
func Open(path string) (*Store, error) { return OpenFS(OS, path) }

// OpenFS is Open on an injected filesystem — the seam the fault-injection
// suites use. Production callers use Open (the os passthrough).
func OpenFS(fsys FS, path string) (*Store, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating directory: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s := &Store{path: path, fs: fsys, f: f, index: make(map[string]recordRef)}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking to log end: %w", err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// Report describes what Open found and repaired. It does not change
// after Open.
func (s *Store) Report() OpenReport { return s.report }

// Wedged returns the error that wedged the store, or nil.
func (s *Store) Wedged() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wedged
}

// wedge poisons the store after a write/fsync failure. Callers hold mu.
func (s *Store) wedge(cause error) {
	if s.wedged == nil {
		s.wedged = fmt.Errorf("%w: %v", ErrWedged, cause)
	}
}

// record layout:
//
//	op(1) keyLen(4) valLen(4) key val crc32(4 over everything before it)
func (s *Store) replay() error {
	size, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("store: sizing log: %w", err)
	}
	var off int64
	salvaging := false
	r := bufio.NewReader(io.NewSectionReader(s.f, 0, size))
	for off < size {
		rec, key, valOff, valLen, err := readRecord(r, off)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Damaged bytes at off. Salvage-scan for the next CRC-valid
			// record boundary: bit rot mid-log must not discard the
			// intact records beyond it. If nothing intact follows, this
			// is a torn tail — truncate to the last good record.
			next := s.scanForRecord(off+1, size)
			if next < 0 {
				if terr := s.f.Truncate(off); terr != nil {
					return fmt.Errorf("store: truncating corrupt tail: %w", terr)
				}
				s.report.TailTruncated = size - off
				size = off
				break
			}
			s.report.CorruptRegions++
			s.report.CorruptSkipped += next - off
			s.garbage += next - off
			salvaging = true
			off = next
			r = bufio.NewReader(io.NewSectionReader(s.f, off, size-off))
			continue
		}
		switch rec {
		case opPut:
			if old, ok := s.index[key]; ok {
				s.garbage += int64(old.length)
			}
			s.index[key] = recordRef{off: valOff, length: valLen}
		case opDelete:
			if old, ok := s.index[key]; ok {
				s.garbage += int64(old.length)
				delete(s.index, key)
			}
		}
		s.report.Records++
		if salvaging {
			s.report.SalvagedRecords++
		}
		off = valOff + int64(valLen) + 4 // skip crc
	}
	s.size = off
	return nil
}

// scanForRecord returns the smallest offset in [from, size) at which a
// complete CRC-valid record begins, or -1. A false positive needs random
// bytes to pass the op/bounds sanity checks and a CRC32 collision, so in
// practice the scan resynchronizes exactly at the next real record.
func (s *Store) scanForRecord(from, size int64) int64 {
	const window = 64 << 10
	buf := make([]byte, window)
	for base := from; base < size; {
		n := window
		if rem := size - base; rem < int64(n) {
			n = int(rem)
		}
		m, err := s.f.ReadAt(buf[:n], base)
		if m <= 0 {
			if err != nil {
				return -1
			}
			return -1
		}
		for i := 0; i < m; i++ {
			if buf[i] != opPut && buf[i] != opDelete {
				continue
			}
			if cand := base + int64(i); s.validRecordAt(cand, size) {
				return cand
			}
		}
		base += int64(m)
	}
	return -1
}

// validRecordAt reports whether a complete CRC-valid record starts at off.
func (s *Store) validRecordAt(off, size int64) bool {
	var hdr [9]byte
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return false
	}
	op := hdr[0]
	keyLen := int32(binary.LittleEndian.Uint32(hdr[1:5]))
	valLen := int32(binary.LittleEndian.Uint32(hdr[5:9]))
	if (op != opPut && op != opDelete) || keyLen < 0 || valLen < 0 || keyLen > maxKeyLen || valLen > maxValLen {
		return false
	}
	total := 9 + int64(keyLen) + int64(valLen) + 4
	if off+total > size {
		return false
	}
	body := make([]byte, int(keyLen)+int(valLen)+4)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, off+9, total-9), body); err != nil {
		return false
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(body[:keyLen+valLen])
	return crc.Sum32() == binary.LittleEndian.Uint32(body[keyLen+valLen:])
}

func readRecord(r *bufio.Reader, off int64) (op byte, key string, valOff int64, valLen int32, err error) {
	var hdr [9]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = errors.New("store: torn header")
		}
		return
	}
	op = hdr[0]
	keyLen := int32(binary.LittleEndian.Uint32(hdr[1:5]))
	valLen = int32(binary.LittleEndian.Uint32(hdr[5:9]))
	if op != opPut && op != opDelete || keyLen < 0 || valLen < 0 || keyLen > maxKeyLen || valLen > maxValLen {
		err = errors.New("store: invalid record header")
		return
	}
	buf := make([]byte, int(keyLen)+int(valLen)+4)
	if _, err = io.ReadFull(r, buf); err != nil {
		err = errors.New("store: torn record body")
		return
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(buf[:keyLen+valLen])
	if crc.Sum32() != binary.LittleEndian.Uint32(buf[keyLen+valLen:]) {
		err = errors.New("store: checksum mismatch")
		return
	}
	key = string(buf[:keyLen])
	valOff = off + 9 + int64(keyLen)
	return
}

func appendRecord(w io.Writer, op byte, key string, val []byte) (int, error) {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write([]byte(key))
	crc.Write(val)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	n := 0
	for _, chunk := range [][]byte{hdr[:], []byte(key), val, sum[:]} {
		m, err := w.Write(chunk)
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Put stores val under key, overwriting any previous value. A write
// failure wedges the store (see ErrWedged): the buffered writer may hold
// part of a record, and flushing anything after it would bury garbage
// mid-log that replay could misparse.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	n, err := appendRecord(s.w, opPut, key, val)
	if err != nil {
		s.wedge(err)
		return fmt.Errorf("store: appending put: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		s.wedge(err)
		return fmt.Errorf("store: flushing put: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.garbage += int64(old.length)
	}
	s.index[key] = recordRef{off: s.size + 9 + int64(len(key)), length: int32(len(val))}
	s.size += int64(n)
	return nil
}

// Get returns the value stored under key, or ErrNotFound. Reads work
// even on a wedged store: the index only ever references fully flushed
// records.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ref, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	val := make([]byte, ref.length)
	if _, err := s.f.ReadAt(val, ref.off); err != nil {
		return nil, fmt.Errorf("store: reading value: %w", err)
	}
	return val, nil
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	n, err := appendRecord(s.w, opDelete, key, nil)
	if err != nil {
		s.wedge(err)
		return fmt.Errorf("store: appending delete: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		s.wedge(err)
		return fmt.Errorf("store: flushing delete: %w", err)
	}
	s.garbage += int64(s.index[key].length)
	delete(s.index, key)
	s.size += int64(n)
	return nil
}

// Len reports the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns the live keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SizeOnDisk reports the current log size in bytes, including garbage.
func (s *Store) SizeOnDisk() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Compact rewrites the log with only live records, reclaiming garbage.
// The rewrite goes to a sibling temp file that atomically replaces the
// log — fsynced before the rename and with the directory fsynced after
// it, so an OS crash at any point yields either the old log or the
// complete new one, never a truncated or missing file.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	tmpPath := s.path + ".compact"
	tmp, err := s.fs.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	abort := func(err error, what string) error {
		tmp.Close()
		s.fs.Remove(tmpPath)
		return fmt.Errorf("store: compaction %s: %w", what, err)
	}
	bw := bufio.NewWriter(tmp)
	newIndex := make(map[string]recordRef, len(s.index))
	var off int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ref := s.index[key]
		val := make([]byte, ref.length)
		if _, err := s.f.ReadAt(val, ref.off); err != nil {
			return abort(err, "read")
		}
		n, err := appendRecord(bw, opPut, key, val)
		if err != nil {
			return abort(err, "write")
		}
		newIndex[key] = recordRef{off: off + 9 + int64(len(key)), length: ref.length}
		off += int64(n)
	}
	if err := bw.Flush(); err != nil {
		return abort(err, "flush")
	}
	// The rewrite must be durable before the rename makes it the only
	// copy: rename-without-fsync can replace a good log with a
	// truncated or empty one on OS crash.
	if err := tmp.Sync(); err != nil {
		return abort(err, "fsync")
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmpPath)
		return fmt.Errorf("store: closing compaction file: %w", err)
	}
	if err := s.fs.Rename(tmpPath, s.path); err != nil {
		s.fs.Remove(tmpPath)
		return fmt.Errorf("store: swapping compacted log: %w", err)
	}
	// Past the rename the old log is unlinked: any further failure
	// wedges the store (reads continue against the old inode, whose
	// live content matches the index).
	if err := s.fs.SyncDir(filepath.Dir(s.path)); err != nil {
		s.wedge(err)
		return fmt.Errorf("store: fsyncing directory after compaction swap: %w", err)
	}
	f, err := s.fs.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		s.wedge(err)
		return fmt.Errorf("store: reopening compacted log: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		s.wedge(err)
		return fmt.Errorf("store: seeking compacted log: %w", err)
	}
	s.f.Close()
	s.f = f
	s.w = bufio.NewWriter(f)
	s.index = newIndex
	s.size = off
	s.garbage = 0
	s.dirSynced = true
	return nil
}

// Sync flushes buffered writes and forces them to stable storage — the
// durability barrier after which the data survives an OS crash, not just
// a process kill. The first Sync also fsyncs the log's directory so a
// freshly created file cannot be forgotten by the directory itself. A
// failed fsync wedges the store and is never retried in place: the
// kernel may have dropped the dirty pages while reporting them clean, so
// a "successful" retry would durably lose them (fsyncgate).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.wedged
	}
	if err := s.w.Flush(); err != nil {
		s.wedge(err)
		return fmt.Errorf("store: sync flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.wedge(err)
		return fmt.Errorf("store: fsync: %w", err)
	}
	if !s.dirSynced {
		if err := s.fs.SyncDir(filepath.Dir(s.path)); err != nil {
			s.wedge(err)
			return fmt.Errorf("store: fsyncing directory: %w", err)
		}
		s.dirSynced = true
	}
	return nil
}

// Close flushes and closes the underlying file. A wedged store closes
// without flushing: the buffer may hold a partial record, and the log's
// last successful flush is the state reopen recovers.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wedged != nil {
		return s.f.Close()
	}
	if err := s.w.Flush(); err != nil {
		s.wedge(err)
		s.f.Close()
		return fmt.Errorf("store: final flush: %w", err)
	}
	return s.f.Close()
}
