package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cache.log")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, path
}

func TestPutGet(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("k1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "v1" {
		t.Fatalf("Get = %q, want v1", got)
	}
}

func TestGetMissing(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if _, err := s.Get("nope"); err != ErrNotFound {
		t.Fatalf("Get(missing) err = %v, want ErrNotFound", err)
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("old"))
	s.Put("k", []byte("new"))
	got, _ := s.Get("k")
	if string(got) != "new" {
		t.Fatalf("Get after overwrite = %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get("k"); err != ErrNotFound {
		t.Fatal("key survived delete")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete(missing): %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("key%d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	s.Delete("key7")
	s.Put("key3", []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 49 {
		t.Fatalf("Len after reopen = %d, want 49", s2.Len())
	}
	if _, err := s2.Get("key7"); err != ErrNotFound {
		t.Fatal("deleted key resurrected on reopen")
	}
	got, _ := s2.Get("key3")
	if string(got) != "updated" {
		t.Fatalf("key3 = %q, want updated", got)
	}
	// Writes after reopen must work.
	if err := s2.Put("fresh", []byte("x")); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	s, path := openTemp(t)
	s.Put("good", []byte("value"))
	s.Close()

	// Simulate a crash mid-write: append half a record.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{opPut, 5, 0, 0})
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer s2.Close()
	got, err := s2.Get("good")
	if err != nil || string(got) != "value" {
		t.Fatalf("intact record lost: %q %v", got, err)
	}
	// The store must be writable after truncation.
	if err := s2.Put("after", []byte("crash")); err != nil {
		t.Fatalf("Put after truncate: %v", err)
	}
	got, _ = s2.Get("after")
	if string(got) != "crash" {
		t.Fatal("write after truncation corrupted")
	}
}

func TestCorruptChecksumDropsTail(t *testing.T) {
	s, path := openTemp(t)
	s.Put("a", []byte("1"))
	off := s.SizeOnDisk()
	s.Put("b", []byte("2"))
	s.Close()

	// Flip a bit inside the second record's value.
	data, _ := os.ReadFile(path)
	data[off+10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen with corrupt record: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("a"); err != nil {
		t.Fatal("record before corruption lost")
	}
	if _, err := s2.Get("b"); err != ErrNotFound {
		t.Fatal("corrupt record served")
	}
}

func TestCompact(t *testing.T) {
	s, path := openTemp(t)
	payload := bytes.Repeat([]byte("x"), 1000)
	for i := 0; i < 20; i++ {
		s.Put("churn", payload) // 19 garbage versions
	}
	s.Put("keep", []byte("small"))
	before := s.SizeOnDisk()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.SizeOnDisk()
	if after >= before/2 {
		t.Fatalf("compaction ineffective: %d -> %d", before, after)
	}
	got, err := s.Get("churn")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("live value lost in compaction")
	}
	// Store must remain usable and durable after compaction.
	s.Put("post", []byte("compact"))
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s2.Close()
	if got, _ := s2.Get("post"); string(got) != "compact" {
		t.Fatal("post-compaction write lost")
	}
	if got, _ := s2.Get("keep"); string(got) != "small" {
		t.Fatal("compacted value lost after reopen")
	}
}

func TestKeysSorted(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for _, k := range []string{"zebra", "apple", "mango"} {
		s.Put(k, []byte(k))
	}
	keys := s.Keys()
	want := []string{"apple", "mango", "zebra"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := s.Get(key)
				if err != nil || string(got) != key {
					t.Errorf("Get(%s) = %q, %v", key, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

// Property: any sequence of puts round-trips through close/reopen.
func TestRoundTripProperty(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "p.log")
		s, err := Open(path)
		if err != nil {
			return false
		}
		want := make(map[string][]byte)
		for i, kb := range keys {
			if len(vals) == 0 {
				break
			}
			k := string(kb)
			v := vals[i%len(vals)]
			if err := s.Put(k, v); err != nil {
				return false
			}
			want[k] = v
		}
		s.Close()
		s2, err := Open(path)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len() != len(want) {
			return false
		}
		for k, v := range want {
			got, err := s2.Get(k)
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte("v"), 512)
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("key%d", i), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key%d", i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}
