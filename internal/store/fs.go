package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// FS is the filesystem seam every store (and the registry's persistence
// path) runs on. The default, OS, passes straight through to package os
// — one interface dispatch per call, nothing else — so production pays
// no cost for the seam. Tests inject faultfs.FS to script write
// failures, fsync loss, ENOSPC, bit flips, and power-fail crash points
// against the exact same code paths production runs.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags the
	// store uses: os.O_CREATE, os.O_EXCL, os.O_TRUNC, os.O_RDWR.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Stat reports file metadata (existence checks, temp-sweep ages).
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists dir (the registry's orphaned-temp sweep).
	ReadDir(dir string) ([]os.DirEntry, error)
	// SyncDir fsyncs the directory itself, making renames and newly
	// created names durable. On OS crash, a rename without a following
	// SyncDir may roll back to the old name — or, for a fresh file, to
	// no file at all.
	SyncDir(dir string) error
}

// File is the per-handle surface the store needs: sequential writes
// behind a bufio.Writer, random reads for Get, fsync for durability
// barriers, and truncation for torn-tail recovery.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// OS is the production FS: a zero-cost passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// tempSeq makes CreateTemp names unique within a process; the pid keeps
// them unique across processes sharing a cluster persist dir.
var tempSeq atomic.Uint64

// CreateTemp creates a new file in dir whose name is pattern with the
// final "*" replaced by a unique suffix — os.CreateTemp, but through the
// FS seam so fault injection sees temp-file creation too.
func CreateTemp(fsys FS, dir, pattern string) (string, File, error) {
	prefix, suffix, _ := strings.Cut(pattern, "*")
	for try := 0; try < 10000; try++ {
		name := filepath.Join(dir, fmt.Sprintf("%s%d-%d%s", prefix, os.Getpid(), tempSeq.Add(1), suffix))
		f, err := fsys.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", nil, err
		}
		return name, f, nil
	}
	return "", nil, fmt.Errorf("store: could not create temp file from pattern %q", pattern)
}
