// Package faultfs is an in-memory implementation of store.FS that
// injects scripted storage faults and captures power-fail crash points.
//
// The model tracks two copies of every file: the visible content (what
// reads and a surviving process observe — page cache semantics) and the
// durable content (what an OS crash or power loss preserves — whatever
// the last successful Sync persisted). Namespace bindings (name → file)
// are likewise split: creating or renaming a file updates the visible
// binding immediately, but the binding only becomes durable when the
// containing directory is fsynced (SyncDir), exactly the POSIX behavior
// the store's crash-consistency depends on.
//
// Fault schedules are deterministic scripts: each Fault names an
// operation class, an optional path substring, and how many matching
// operations to let through before firing. Faults can fail outright,
// short-write, exhaust an ENOSPC byte budget, or emulate fsyncgate —
// a failed fsync that drops the buffered data while marking the pages
// clean, so no later fsync can ever persist them.
//
// With capture enabled, the FS snapshots the durable state (plus the
// not-yet-synced visible suffix of each file) after every mutating
// operation. Restore rebuilds a filesystem as a power loss at that
// boundary would leave it, optionally tearing the unsynced suffix at an
// arbitrary byte — the substrate of the store's powerfail property test.
package faultfs

import (
	"bytes"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/store"
)

// Op classifies filesystem operations for fault matching.
type Op string

const (
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpRead     Op = "read"
	OpSync     Op = "sync"
	OpSyncDir  Op = "syncdir"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
)

// ErrInjected is the default error returned by a firing fault.
var ErrInjected = fmt.Errorf("faultfs: injected fault: %w", syscall.EIO)

// Fault is one entry in a fault schedule.
type Fault struct {
	// Op selects the operation class the fault applies to.
	Op Op
	// Path, when non-empty, restricts the fault to operations whose
	// path contains it as a substring.
	Path string
	// After is how many matching operations complete normally before
	// the fault fires: 0 fires on the first match.
	After int
	// Err is the error to return; nil means ErrInjected.
	Err error
	// ShortBy, for OpWrite, makes the write land len(p)-ShortBy bytes
	// before failing — a torn write with real partial bytes on disk.
	ShortBy int
	// DropBuffered, for OpSync, emulates fsyncgate: the fsync fails AND
	// the kernel marks the dirty pages clean, so the unsynced data can
	// never be persisted by any later fsync on this file.
	DropBuffered bool
	// Repeat keeps the fault armed after it fires instead of spending it.
	Repeat bool

	hits  int
	spent bool
}

type inode struct {
	data    []byte // visible content (page cache view)
	durable []byte // content a power loss preserves
	// gated marks a fsyncgate casualty: pages clean but not durable;
	// durable is frozen until the file is truncated or recreated.
	gated bool
	mtime time.Time
}

// CrashFile is the per-file component of a CrashPoint.
type CrashFile struct {
	// Durable is the content a power loss at this point preserves.
	Durable []byte
	// Pending is the visible suffix beyond Durable (data written but
	// not yet synced) when the visible content extends the durable
	// content append-only; nil otherwise. A crash may preserve any
	// prefix of it.
	Pending []byte
}

// CrashPoint is the durable filesystem state captured after one
// mutating operation.
type CrashPoint struct {
	// Seq is the mutating-operation sequence number this point was
	// captured after; compare with FS.Seq to correlate with workload
	// progress.
	Seq int
	// Files maps each durably-bound name to its surviving content.
	Files map[string]CrashFile
}

// FS is the fault-injecting in-memory filesystem. The zero value is not
// usable; call New.
type FS struct {
	mu sync.Mutex
	// visible and durable name → inode bindings.
	files   map[string]*inode
	durable map[string]*inode
	dirs    map[string]bool
	faults  []*Fault
	// space is the remaining byte budget for file growth; -1 = unlimited.
	space   int64
	seq     int
	capture bool
	crashes []CrashPoint
}

// New returns an empty filesystem with no faults and unlimited space.
func New() *FS {
	return &FS{
		files:   make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    map[string]bool{".": true, "/": true},
		space:   -1,
	}
}

// Inject appends a fault to the schedule.
func (f *FS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &fault)
}

// ClearFaults disarms every scheduled fault.
func (f *FS) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// SetSpace sets the remaining byte budget for file growth; writes that
// would exceed it land partially and fail with ENOSPC. Negative means
// unlimited.
func (f *FS) SetSpace(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.space = n
}

// AddSpace grows the remaining byte budget (freeing space after an
// ENOSPC episode). No-op when space is unlimited.
func (f *FS) AddSpace(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.space >= 0 {
		f.space += n
	}
}

// Capture enables or disables crash-point capture.
func (f *FS) Capture(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.capture = on
}

// Seq returns the number of mutating operations applied so far.
func (f *FS) Seq() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// CrashPoints returns the crash points captured so far.
func (f *FS) CrashPoints() []CrashPoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]CrashPoint, len(f.crashes))
	copy(out, f.crashes)
	return out
}

// FlipBit flips one bit of a file's content in place — both the visible
// and the durable copy, modeling corruption of bytes already on media.
func (f *FS) FlipBit(name string, off int64, bit uint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.files[filepath.Clean(name)]
	if !ok {
		return &os.PathError{Op: "flipbit", Path: name, Err: os.ErrNotExist}
	}
	if off < 0 || off >= int64(len(ino.data)) {
		return fmt.Errorf("faultfs: flipbit offset %d out of range (size %d)", off, len(ino.data))
	}
	ino.data[off] ^= 1 << (bit % 8)
	if off < int64(len(ino.durable)) {
		ino.durable[off] ^= 1 << (bit % 8)
	}
	return nil
}

// ReadFile returns a copy of the visible content of name.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// Restore builds the filesystem a power loss at cp would leave behind:
// only durably-bound names exist, each holding its durable content plus
// the first torn[name] bytes of its pending (unsynced) suffix. The
// returned FS has no faults, unlimited space, and capture off.
func Restore(cp CrashPoint, torn map[string]int) *FS {
	out := New()
	for name, cf := range cp.Files {
		content := append([]byte(nil), cf.Durable...)
		if n := torn[name]; n > 0 && len(cf.Pending) > 0 {
			if n > len(cf.Pending) {
				n = len(cf.Pending)
			}
			content = append(content, cf.Pending[:n]...)
		}
		ino := &inode{data: content, durable: append([]byte(nil), content...)}
		out.files[name] = ino
		out.durable[name] = ino
		for dir := filepath.Dir(name); ; dir = filepath.Dir(dir) {
			out.dirs[dir] = true
			if dir == "." || dir == "/" || out.dirs[filepath.Dir(dir)] {
				break
			}
		}
	}
	return out
}

// fire returns the scheduled fault matching (op, name) that is due to
// fire now, or nil. Callers hold f.mu.
func (f *FS) fire(op Op, name string) *Fault {
	for _, ft := range f.faults {
		if ft.Op != op || ft.spent {
			continue
		}
		if ft.Path != "" && !strings.Contains(name, ft.Path) {
			continue
		}
		if ft.hits < ft.After {
			ft.hits++
			continue
		}
		if !ft.Repeat {
			ft.spent = true
		}
		return ft
	}
	return nil
}

func faultErr(ft *Fault) error {
	if ft.Err != nil {
		return ft.Err
	}
	return ErrInjected
}

// mutated records a mutating operation and, when capture is on,
// snapshots the durable state. Callers hold f.mu.
func (f *FS) mutated() {
	f.seq++
	if !f.capture {
		return
	}
	cp := CrashPoint{Seq: f.seq, Files: make(map[string]CrashFile, len(f.durable))}
	for name, ino := range f.durable {
		cf := CrashFile{Durable: append([]byte(nil), ino.durable...)}
		if !ino.gated && len(ino.data) > len(ino.durable) && bytes.HasPrefix(ino.data, ino.durable) {
			cf.Pending = append([]byte(nil), ino.data[len(ino.durable):]...)
		}
		cp.Files[name] = cf
	}
	f.crashes = append(f.crashes, cp)
}

// OpenFile implements store.FS.
func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if ft := f.fire(OpOpen, name); ft != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: faultErr(ft)}
	}
	ino, exists := f.files[name]
	switch {
	case exists && flag&os.O_EXCL != 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	case !exists && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !exists:
		ino = &inode{mtime: time.Now()}
		f.files[name] = ino
		// A freshly created name is not durable until its directory is
		// fsynced; the inode content becomes durable via Sync as usual.
		f.mutated()
	case flag&os.O_TRUNC != 0:
		f.reclaim(int64(len(ino.data)))
		ino.data = nil
		ino.durable = nil
		ino.gated = false
		ino.mtime = time.Now()
		f.mutated()
	}
	return &file{fs: f, name: name, ino: ino}, nil
}

// reclaim returns freed bytes to the space budget. Callers hold f.mu.
func (f *FS) reclaim(n int64) {
	if f.space >= 0 {
		f.space += n
	}
}

// Rename implements store.FS. The visible binding moves immediately;
// the move is durable only after SyncDir on the containing directory.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if ft := f.fire(OpRename, oldpath); ft != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: faultErr(ft)}
	}
	ino, ok := f.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	if victim, ok := f.files[newpath]; ok && victim != ino {
		f.reclaim(int64(len(victim.data)))
	}
	delete(f.files, oldpath)
	f.files[newpath] = ino
	f.mutated()
	return nil
}

// Remove implements store.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if ft := f.fire(OpRemove, name); ft != nil {
		return &os.PathError{Op: "remove", Path: name, Err: faultErr(ft)}
	}
	ino, ok := f.files[name]
	if !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	f.reclaim(int64(len(ino.data)))
	delete(f.files, name)
	f.mutated()
	return nil
}

// MkdirAll implements store.FS. Directories are durable immediately:
// losing a directory is not a failure mode the store defends against.
func (f *FS) MkdirAll(dir string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	for {
		f.dirs[dir] = true
		parent := filepath.Dir(dir)
		if parent == dir || f.dirs[parent] {
			break
		}
		dir = parent
	}
	return nil
}

// Stat implements store.FS.
func (f *FS) Stat(name string) (os.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = filepath.Clean(name)
	if ino, ok := f.files[name]; ok {
		return fileInfo{name: filepath.Base(name), size: int64(len(ino.data)), mtime: ino.mtime}, nil
	}
	if f.dirs[name] {
		return fileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

// ReadDir implements store.FS.
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if !f.dirs[dir] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	var out []os.DirEntry
	for name, ino := range f.files {
		if filepath.Dir(name) == dir {
			out = append(out, dirEntry{fileInfo{name: filepath.Base(name), size: int64(len(ino.data)), mtime: ino.mtime}})
		}
	}
	for name := range f.dirs {
		if name != dir && filepath.Dir(name) == dir {
			out = append(out, dirEntry{fileInfo{name: filepath.Base(name), dir: true}})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// SyncDir implements store.FS: the directory's current visible bindings
// become its durable bindings.
func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = filepath.Clean(dir)
	if ft := f.fire(OpSyncDir, dir); ft != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: faultErr(ft)}
	}
	for name := range f.durable {
		if filepath.Dir(name) == dir {
			if _, visible := f.files[name]; !visible || f.files[name] != f.durable[name] {
				delete(f.durable, name)
			}
		}
	}
	for name, ino := range f.files {
		if filepath.Dir(name) == dir {
			f.durable[name] = ino
		}
	}
	f.mutated()
	return nil
}

type file struct {
	fs     *FS
	name   string
	ino    *inode
	pos    int64
	closed bool
}

func (h *file) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	n := len(p)
	var injected error
	if ft := h.fs.fire(OpWrite, h.name); ft != nil {
		injected = faultErr(ft)
		if ft.ShortBy > 0 {
			n -= ft.ShortBy
			if n < 0 {
				n = 0
			}
		} else {
			n = 0
		}
	}
	// ENOSPC budget: growth beyond the current size consumes space;
	// what does not fit is cut off.
	if h.fs.space >= 0 {
		grow := h.pos + int64(n) - int64(len(h.ino.data))
		if grow > h.fs.space {
			n -= int(grow - h.fs.space)
			if n < 0 {
				n = 0
			}
			if injected == nil {
				injected = syscall.ENOSPC
			}
		}
	}
	if n > 0 {
		end := h.pos + int64(n)
		if grow := end - int64(len(h.ino.data)); grow > 0 {
			if h.fs.space >= 0 {
				h.fs.space -= grow
			}
			h.ino.data = append(h.ino.data, make([]byte, grow)...)
		}
		copy(h.ino.data[h.pos:end], p[:n])
		h.pos = end
		h.ino.mtime = time.Now()
		h.fs.mutated()
	}
	if injected != nil {
		return n, &os.PathError{Op: "write", Path: h.name, Err: injected}
	}
	return n, nil
}

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	if ft := h.fs.fire(OpRead, h.name); ft != nil {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: faultErr(ft)}
	}
	if off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if ft := h.fs.fire(OpSync, h.name); ft != nil {
		if ft.DropBuffered {
			// fsyncgate: the kernel reports the pages clean after the
			// failed writeback; the unsynced data can never become
			// durable through this file again.
			h.ino.gated = true
			h.fs.mutated()
		}
		return &os.PathError{Op: "sync", Path: h.name, Err: faultErr(ft)}
	}
	if !h.ino.gated {
		h.ino.durable = append([]byte(nil), h.ino.data...)
		h.fs.mutated()
	}
	return nil
}

func (h *file) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if ft := h.fs.fire(OpTruncate, h.name); ft != nil {
		return &os.PathError{Op: "truncate", Path: h.name, Err: faultErr(ft)}
	}
	switch {
	case size < int64(len(h.ino.data)):
		h.fs.reclaim(int64(len(h.ino.data)) - size)
		h.ino.data = h.ino.data[:size]
		if size < int64(len(h.ino.durable)) {
			h.ino.durable = append([]byte(nil), h.ino.data...)
		}
	case size > int64(len(h.ino.data)):
		h.ino.data = append(h.ino.data, make([]byte, size-int64(len(h.ino.data)))...)
	}
	h.ino.mtime = time.Now()
	h.fs.mutated()
	return nil
}

func (h *file) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	switch whence {
	case 0:
		h.pos = offset
	case 1:
		h.pos += offset
	case 2:
		h.pos = int64(len(h.ino.data)) + offset
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	if h.pos < 0 {
		h.pos = 0
		return 0, fmt.Errorf("faultfs: negative seek")
	}
	return h.pos, nil
}

func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

type fileInfo struct {
	name  string
	size  int64
	mtime time.Time
	dir   bool
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.size }
func (fi fileInfo) Mode() iofs.FileMode {
	if fi.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (fi fileInfo) ModTime() time.Time { return fi.mtime }
func (fi fileInfo) IsDir() bool        { return fi.dir }
func (fi fileInfo) Sys() any           { return nil }

type dirEntry struct{ fi fileInfo }

func (d dirEntry) Name() string                 { return d.fi.name }
func (d dirEntry) IsDir() bool                  { return d.fi.dir }
func (d dirEntry) Type() iofs.FileMode          { return d.fi.Mode().Type() }
func (d dirEntry) Info() (iofs.FileInfo, error) { return d.fi, nil }
