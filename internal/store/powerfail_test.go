package store_test

// The powerfail property test: run a scripted workload against a store
// on a crash-capturing faultfs, then reopen the store at EVERY captured
// crash point (with the unsynced suffix torn at several byte boundaries)
// and require that the recovered state is exactly the state after some
// prefix of the workload — at least everything covered by the last
// completed durability barrier (Sync or Compact), at most the operation
// in flight. That single invariant is both halves of crash consistency:
// every synced Put survives, and no phantom or reordered data appears.

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/store/faultfs"
)

func TestPowerfailProperty(t *testing.T) {
	const (
		path    = "tenants/power.cache"
		numOps  = 140
		numKeys = 24
	)
	rng := sim.NewRNG(0xC0FFEE)

	fs := faultfs.New()
	fs.Capture(true)
	st, err := store.OpenFS(fs, path)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}

	// Drive the workload, recording after each op: the expected live
	// state, the fs mutation sequence number, and the index of the last
	// op covered by a completed durability barrier.
	state := map[string]string{}
	snap := func() map[string]string {
		c := make(map[string]string, len(state))
		for k, v := range state {
			c[k] = v
		}
		return c
	}
	expected := []map[string]string{snap()} // expected[i] = state after op i
	seqAfter := []int{fs.Seq()}             // seqAfter[i] = fs.Seq() after op i
	syncedAfter := []int{0}                 // syncedAfter[i] = last durable op index after op i

	for i := 1; i <= numOps; i++ {
		synced := syncedAfter[i-1]
		switch roll := rng.Float64(); {
		case roll < 0.70:
			k := fmt.Sprintf("key-%d", rng.Intn(numKeys))
			v := fmt.Sprintf("val-%d-%d", i, rng.Intn(1<<20))
			if err := st.Put(k, []byte(v)); err != nil {
				t.Fatalf("op %d Put: %v", i, err)
			}
			state[k] = v
		case roll < 0.85:
			k := fmt.Sprintf("key-%d", rng.Intn(numKeys))
			if err := st.Delete(k); err != nil {
				t.Fatalf("op %d Delete: %v", i, err)
			}
			delete(state, k)
		case roll < 0.95:
			if err := st.Sync(); err != nil {
				t.Fatalf("op %d Sync: %v", i, err)
			}
			synced = i
		default:
			if err := st.Compact(); err != nil {
				t.Fatalf("op %d Compact: %v", i, err)
			}
			// Compact leaves the whole live state durable: the rewrite
			// is fsynced before the swap and the swap is fsynced after.
			synced = i
		}
		expected = append(expected, snap())
		seqAfter = append(seqAfter, fs.Seq())
		syncedAfter = append(syncedAfter, synced)
	}
	st.Close()

	cps := fs.CrashPoints()
	if len(cps) < numOps {
		t.Fatalf("only %d crash points captured for %d ops", len(cps), numOps)
	}

	// opIndexFor maps a crash sequence number to the workload op it
	// falls within (seqAfter is nondecreasing).
	opIndexFor := func(seq int) int {
		for i := 1; i <= numOps; i++ {
			if seq <= seqAfter[i] {
				return i
			}
		}
		return numOps
	}

	checked := 0
	for _, cp := range cps {
		opIdx := opIndexFor(cp.Seq)
		lo := syncedAfter[opIdx-1]
		if cp.Seq == seqAfter[opIdx] {
			// The op completed before this boundary; if it was a
			// barrier, its durability already holds here.
			lo = syncedAfter[opIdx]
		}

		// Tear the unsynced suffix at several boundaries: none of it,
		// all of it, and two random cuts.
		pending := len(cp.Files[path].Pending)
		cuts := []int{0, pending}
		if pending > 1 {
			cuts = append(cuts, rng.Intn(pending), rng.Intn(pending))
		}
		for _, cut := range cuts {
			rec, err := store.OpenFS(faultfs.Restore(cp, map[string]int{path: cut}), path)
			if err != nil {
				t.Fatalf("crash seq %d cut %d: corrupt open: %v", cp.Seq, cut, err)
			}
			got := make(map[string]string)
			for _, k := range rec.Keys() {
				v, err := rec.Get(k)
				if err != nil {
					t.Fatalf("crash seq %d cut %d: Get(%q): %v", cp.Seq, cut, k, err)
				}
				got[k] = string(v)
			}
			rec.Close()

			match := -1
			for k := lo; k <= opIdx; k++ {
				if mapsEqual(got, expected[k]) {
					match = k
					break
				}
			}
			if match < 0 {
				t.Fatalf("crash at seq %d (op %d, cut %d): recovered state %v matches no prefix state in [%d, %d]\nsynced floor: %v",
					cp.Seq, opIdx, cut, got, lo, opIdx, expected[lo])
			}
			checked++
		}
	}
	if checked < 2*numOps {
		t.Fatalf("property checked only %d recoveries", checked)
	}
	t.Logf("verified %d crash-point recoveries across %d crash points", checked, len(cps))
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
