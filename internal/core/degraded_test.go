package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/vecmath"
)

// aliasNear maps texts to a vector whose cosine similarity to base's
// vector is exactly sim (base is aliased first if needed).
func (s *stubEncoder) aliasNear(seed int64, sim float32, base string, texts ...string) {
	bv, ok := s.m[base]
	if !ok {
		s.alias(seed, base)
		bv = s.m[base]
	}
	// Gram-Schmidt a random direction against bv, then mix.
	rng := rand.New(rand.NewSource(seed + 12345))
	u := make([]float32, s.dim)
	for i := range u {
		u[i] = float32(rng.NormFloat64())
	}
	d := vecmath.Dot(u, bv)
	for i := range u {
		u[i] -= d * bv[i]
	}
	vecmath.Normalize(u)
	ortho := float32(math.Sqrt(float64(1 - sim*sim)))
	v := make([]float32, s.dim)
	for i := range v {
		v[i] = sim*bv[i] + ortho*u[i]
	}
	vecmath.Normalize(v)
	for _, t := range texts {
		s.m[t] = v
	}
}

// flakyLLM is a ContextLLM whose availability the test toggles: healthy
// it answers; down it returns a cache-only rejection (as a breaker-open
// guard would); failing it returns a plain error.
type flakyLLM struct {
	calls int
	mode  string // "ok", "open", "err"
}

func (l *flakyLLM) QueryContext(ctx context.Context, q string) (string, time.Duration, error) {
	l.calls++
	switch l.mode {
	case "open":
		return "", 0, &resilience.Rejection{
			Reason: resilience.ReasonUpstreamOpen, RetryAfter: time.Second, CacheOnly: true,
		}
	case "err":
		return "", 0, errors.New("upstream exploded")
	}
	return "llm says: " + q, 50 * time.Millisecond, nil
}

// Query adapts to the legacy interface (Options.LLM is typed LLM).
func (l *flakyLLM) Query(q string) (string, time.Duration) {
	r, took, _ := l.QueryContext(context.Background(), q)
	return r, took
}

// TestDegradedCacheOnlyServing: with the upstream breaker open, a near
// match below τ but above τ − DegradedTauDelta is served as a degraded
// hit; without such a match the rejection propagates for the serving
// layer to shed.
func TestDegradedCacheOnlyServing(t *testing.T) {
	enc := newStub(64)
	// "relaxed match" sits at ~0.85 similarity to the cached query:
	// under τ = 0.9, over τ − 0.1 = 0.8.
	enc.aliasNear(7, 0.85, "what is a semantic cache", "relaxed match")
	llm := &flakyLLM{mode: "ok"}
	c := New(Options{
		Encoder:          enc,
		LLM:              llm,
		Tau:              0.9,
		TopK:             5,
		DegradedTauDelta: 0.1,
	})

	// Healthy: cache the canonical query.
	r, err := c.QueryContext(context.Background(), "what is a semantic cache")
	if err != nil || r.Hit {
		t.Fatalf("seed query: hit=%v err=%v", r.Hit, err)
	}

	// Upstream down (breaker open): the paraphrase misses at τ but
	// clears the relaxed bar and is served from cache, marked Degraded.
	llm.mode = "open"
	r, err = c.QueryContext(context.Background(), "relaxed match")
	if err != nil {
		t.Fatalf("degraded lookup errored: %v", err)
	}
	if !r.Hit || !r.Degraded {
		t.Fatalf("hit=%v degraded=%v, want degraded hit", r.Hit, r.Degraded)
	}
	if r.Response != "llm says: what is a semantic cache" {
		t.Fatalf("degraded response = %q", r.Response)
	}
	if got := c.Stats().DegradedHits; got != 1 {
		t.Fatalf("DegradedHits = %d, want 1", got)
	}

	// An unrelated query has nothing within the relaxed bar: the
	// rejection surfaces so the serving layer can 503 with Retry-After.
	_, err = c.QueryContext(context.Background(), "completely unrelated question")
	rej, ok := resilience.AsRejection(err)
	if !ok || !rej.CacheOnly {
		t.Fatalf("err = %v, want cache-only rejection", err)
	}

	// Genuine upstream failures are not eligible for degraded serving.
	llm.mode = "err"
	_, err = c.QueryContext(context.Background(), "relaxed match two")
	if err == nil {
		t.Fatalf("plain upstream failure should propagate")
	}
	if _, ok := resilience.AsRejection(err); ok {
		t.Fatalf("plain failure misclassified as rejection: %v", err)
	}
}

// TestQueryContextCancelPropagates: the request context reaches the
// upstream call.
func TestQueryContextCancelPropagates(t *testing.T) {
	enc := newStub(64)
	c := New(Options{
		Encoder: enc,
		LLM:     ctxProbeLLM{},
		Tau:     0.9,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.QueryContext(ctx, "anything")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// ctxProbeLLM errors with the context's error, proving ctx reached it.
type ctxProbeLLM struct{}

func (ctxProbeLLM) Query(q string) (string, time.Duration) { return "unreachable", 0 }
func (ctxProbeLLM) QueryContext(ctx context.Context, q string) (string, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return "", 0, err
	}
	return "ok", 0, nil
}
