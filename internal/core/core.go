// Package core implements MeanCache itself: the user-centric semantic cache
// of §III. A Client owns a local semantic cache and an embedding encoder;
// queries are served from the cache when a semantically similar cached
// query with a matching context chain exists, and forwarded to the LLM web
// service otherwise (Algorithm 1). The encoder and the similarity threshold
// are typically produced by federated fine-tuning (internal/fl), and the
// encoder may carry a PCA compression layer (internal/pca via
// embed.WithProjection).
//
// The package exposes two query surfaces:
//
//   - Session: stateful conversations. Session.Ask tracks the conversation
//     history and parent entry, so contextual queries are cached with their
//     chain automatically.
//   - Client.Lookup / Client.Insert: the stateless primitives used by the
//     benchmark harness, where probes arrive with explicit contexts.
package core

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/embed"
	"repro/internal/vecmath"
)

// LLM is the upstream web service MeanCache fronts. Query returns the
// response text and how long the service took (simulated or wall-clock).
type LLM interface {
	Query(q string) (response string, took time.Duration)
}

// Options configures a Client.
type Options struct {
	// Encoder produces query embeddings. Required.
	Encoder embed.Encoder
	// LLM is the upstream service. Required for Query/Ask; Lookup-only
	// harness use may leave it nil.
	LLM LLM
	// Tau is the cosine-similarity threshold for a query match — the
	// τ of §III-A.2, learnt per user and aggregated globally by FL.
	Tau float32
	// CtxTau is the threshold for matching conversation context turns
	// against a cached entry's chain. Defaults to Tau when zero.
	CtxTau float32
	// TopK bounds how many similar candidates are context-checked per
	// query (Algorithm 1 retrieves the top-k similar cached queries).
	TopK int
	// Capacity bounds the local cache (0 = unbounded); Policy picks
	// eviction victims (default LRU, as in Figure 1).
	Capacity int
	Policy   cache.Policy
	// FeedbackStep is how much a false-hit report raises Tau (§III-A.2:
	// the threshold adapts from user feedback). Zero disables adjustment.
	FeedbackStep float32
}

// Client is a MeanCache instance: one user's local semantic cache plus the
// machinery to consult it. Client is safe for concurrent use; Tau updates
// from feedback are serialized by the cache's own synchronisation being
// independent of the (rare) feedback path.
type Client struct {
	opts  Options
	cache *cache.Cache
	tau   float32

	// counters for the experiments
	llmQueries  int
	cacheHits   int
	searchTime  time.Duration
	searchCount int
}

// New builds a Client. It panics if no encoder is supplied, because every
// other operation is meaningless without one.
func New(opts Options) *Client {
	if opts.Encoder == nil {
		panic("core: Options.Encoder is required")
	}
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	if opts.Policy == nil {
		opts.Policy = cache.LRU{}
	}
	if opts.CtxTau == 0 {
		opts.CtxTau = opts.Tau
	}
	return &Client{
		opts:  opts,
		cache: cache.New(opts.Encoder.Dim(), opts.Capacity, opts.Policy),
		tau:   opts.Tau,
	}
}

// Cache exposes the underlying semantic cache (for persistence and the
// storage experiments).
func (c *Client) Cache() *cache.Cache { return c.cache }

// Tau reports the current similarity threshold.
func (c *Client) Tau() float32 { return c.tau }

// Result is the outcome of one query.
type Result struct {
	// Response is the text returned to the user.
	Response string
	// Hit reports whether the response came from the local cache.
	Hit bool
	// Entry is the matched cache entry on a hit, nil otherwise.
	Entry *cache.Entry
	// Score is the cosine similarity of the match (hits only).
	Score float32
	// Latency is the end-to-end time: semantic search for hits, search
	// plus LLM time for misses.
	Latency time.Duration
	// SearchTime isolates the semantic-search component of Latency.
	SearchTime time.Duration
}

// Lookup runs the cache-decision half of Algorithm 1: embed q, find similar
// cached queries, and verify the context chain of each candidate against
// ctxTexts (the conversation history, oldest first; empty for standalone
// queries). It performs no insertion and no LLM call.
func (c *Client) Lookup(q string, ctxTexts []string) Result {
	start := time.Now()
	eq := c.opts.Encoder.Encode(q)
	matches := c.cache.FindSimilar(eq, c.opts.TopK, c.tau)
	var res Result
	for _, m := range matches {
		if c.contextMatches(m.Entry, ctxTexts) {
			c.cache.Touch(m.Entry.ID)
			res = Result{
				Response: m.Entry.Response,
				Hit:      true,
				Entry:    m.Entry,
				Score:    m.Score,
			}
			break
		}
	}
	res.SearchTime = time.Since(start)
	res.Latency = res.SearchTime
	c.searchTime += res.SearchTime
	c.searchCount++
	if res.Hit {
		c.cacheHits++
	}
	return res
}

// contextMatches verifies Algorithm 1's context check: a standalone entry
// (empty chain) matches only an empty conversation context, and a
// contextual entry matches when each turn of its chain is semantically
// similar (≥ CtxTau) to the corresponding trailing turn of the submitted
// context.
func (c *Client) contextMatches(e *cache.Entry, ctxTexts []string) bool {
	chain := c.cache.Chain(e.ID)
	if len(chain) == 0 {
		return len(ctxTexts) == 0
	}
	if len(ctxTexts) < len(chain) {
		return false
	}
	tail := ctxTexts[len(ctxTexts)-len(chain):]
	for i, ancestor := range chain {
		ce := c.opts.Encoder.Encode(tail[i])
		if vecmath.Dot(ce, ancestor.Embedding) < c.opts.CtxTau {
			return false
		}
	}
	return true
}

// Insert caches a query/response pair. parent is the cache entry ID of the
// conversational parent, or cache.NoParent for standalone queries. Returns
// the new entry's ID.
func (c *Client) Insert(q, response string, parent int) (int, error) {
	eq := c.opts.Encoder.Encode(q)
	return c.cache.Put(q, response, eq, parent)
}

// Query is the full Algorithm 1 for a standalone query: Lookup, then on a
// miss consult the LLM and enrol the result in the cache.
func (c *Client) Query(q string) (Result, error) {
	return c.queryWithContext(q, nil, cache.NoParent)
}

func (c *Client) queryWithContext(q string, ctxTexts []string, parent int) (Result, error) {
	res := c.Lookup(q, ctxTexts)
	if res.Hit {
		return res, nil
	}
	if c.opts.LLM == nil {
		return res, fmt.Errorf("core: cache miss and no LLM configured")
	}
	resp, took := c.opts.LLM.Query(q)
	c.llmQueries++
	id, err := c.Insert(q, resp, parent)
	if err != nil {
		return res, fmt.Errorf("core: enrolling response: %w", err)
	}
	entry, _ := c.cache.Get(id)
	res.Response = resp
	res.Entry = entry
	res.Latency = res.SearchTime + took
	return res, nil
}

// ReportFalseHit is the user-feedback signal of §III-A.2: the user re-asked
// the LLM after a cache hit, so the hit was wrong. The threshold rises by
// FeedbackStep (clamped to 1) to make future matches stricter.
func (c *Client) ReportFalseHit() {
	if c.opts.FeedbackStep <= 0 {
		return
	}
	c.tau += c.opts.FeedbackStep
	if c.tau > 1 {
		c.tau = 1
	}
}

// SetTau installs a new threshold (e.g. a freshly aggregated τ_global).
func (c *Client) SetTau(tau float32) { c.tau = tau }

// Stats summarises the client's activity.
type Stats struct {
	LLMQueries    int
	CacheHits     int
	Lookups       int
	MeanSearch    time.Duration
	CacheEntries  int
	StorageBytes  int64
	EmbeddingDims int
}

// Stats returns a snapshot of activity counters.
func (c *Client) Stats() Stats {
	s := Stats{
		LLMQueries:    c.llmQueries,
		CacheHits:     c.cacheHits,
		Lookups:       c.searchCount,
		CacheEntries:  c.cache.Len(),
		StorageBytes:  c.cache.StorageBytes(),
		EmbeddingDims: c.opts.Encoder.Dim(),
	}
	if c.searchCount > 0 {
		s.MeanSearch = c.searchTime / time.Duration(c.searchCount)
	}
	return s
}
