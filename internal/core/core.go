// Package core implements MeanCache itself: the user-centric semantic cache
// of §III. A Client owns a local semantic cache and an embedding encoder;
// queries are served from the cache when a semantically similar cached
// query with a matching context chain exists, and forwarded to the LLM web
// service otherwise (Algorithm 1). The encoder and the similarity threshold
// are typically produced by federated fine-tuning (internal/fl), and the
// encoder may carry a PCA compression layer (internal/pca via
// embed.WithProjection).
//
// The package exposes two query surfaces:
//
//   - Session: stateful conversations. Session.Ask tracks the conversation
//     history and parent entry, so contextual queries are cached with their
//     chain automatically.
//   - Client.Lookup / Client.Insert: the stateless primitives used by the
//     benchmark harness, where probes arrive with explicit contexts.
package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/embed"
	"repro/internal/index"
	"repro/internal/resilience"
	"repro/internal/vecmath"
)

// LLM is the upstream web service MeanCache fronts. Query returns the
// response text and how long the service took (simulated or wall-clock).
type LLM interface {
	Query(q string) (response string, took time.Duration)
}

// ContextLLM is the context-aware upstream interface. Implementations
// honour ctx's deadline/cancellation and report failures as real errors
// instead of error-text responses. When Options.LLM also implements
// ContextLLM (llmsim.Service, llmsim.Client and resilience.Guard all do),
// the miss path uses it — the request's context reaches the upstream call
// and shed decisions (resilience.Rejection) surface to the serving layer.
type ContextLLM interface {
	QueryContext(ctx context.Context, q string) (response string, took time.Duration, err error)
}

// Options configures a Client.
type Options struct {
	// Encoder produces query embeddings. Required.
	Encoder embed.Encoder
	// LLM is the upstream service. Required for Query/Ask; Lookup-only
	// harness use may leave it nil.
	LLM LLM
	// Tau is the cosine-similarity threshold for a query match — the
	// τ of §III-A.2, learnt per user and aggregated globally by FL.
	Tau float32
	// CtxTau is the threshold for matching conversation context turns
	// against a cached entry's chain. Defaults to Tau when zero.
	CtxTau float32
	// TopK bounds how many similar candidates are context-checked per
	// query (Algorithm 1 retrieves the top-k similar cached queries).
	TopK int
	// Capacity bounds the local cache (0 = unbounded); Policy picks
	// eviction victims (default LRU, as in Figure 1).
	Capacity int
	Policy   cache.Policy
	// IndexFactory, when non-nil, builds the vector index backing the
	// cache's similarity search (index.NewHNSW, index.NewAdaptive, …)
	// instead of the built-in parallel flat scan. The serving layer also
	// uses it when reviving a persisted tenant, so indexed tenants stay
	// indexed across evictions.
	IndexFactory func(dim int) index.Index
	// FeedbackStep is how much a false-hit report raises Tau (§III-A.2:
	// the threshold adapts from user feedback). Zero disables adjustment.
	FeedbackStep float32
	// DegradedTauDelta enables cache-only degraded serving: when the
	// upstream is unavailable (the miss path returns a cache-only
	// rejection, i.e. the circuit breaker is open), the lookup is retried
	// at τ − DegradedTauDelta. A stale-ish cached answer beats a 503
	// while the upstream heals. Zero disables the degraded retry.
	DegradedTauDelta float32
	// Searcher, when non-nil, routes Lookup's similarity search (a
	// batching searcher coalesces concurrent probes against one hot
	// tenant into a single multi-probe index pass). Nil means the direct
	// per-call FindSimilarAppend path. Results must be identical either
	// way; only lock/scan amortisation differs. The degraded (cache-only)
	// retry path always searches directly — it runs when the system is
	// shedding load, exactly when a batching window would add harm.
	Searcher cache.Searcher
	// MaintenanceGate, when non-nil, bounds the client's background
	// maintenance (cache re-embedding) under a shared weighted
	// semaphore, so migrations across many tenants yield to foreground
	// traffic instead of competing with it. The serving layer passes one
	// process-wide gate to every tenant factory.
	MaintenanceGate cache.Gate
}

// Client is a MeanCache instance: one user's local semantic cache plus the
// machinery to consult it.
//
// Concurrency contract (relied upon by internal/server, which multiplexes
// many goroutines onto one Client per tenant):
//
//   - Lookup, Insert, Query, ReportFalseHit, ReportMissedHit, Tau, SetTau,
//     Reembed, Stats and Cache are all safe for unrestricted concurrent
//     use. Cache state is guarded by the cache's own lock, the threshold
//     by an atomic, and the activity counters by atomics.
//   - A Session is NOT safe for concurrent use: it carries mutable
//     conversation state (history, parent). Callers must confine each
//     Session to one goroutine or serialise Ask calls externally (the
//     server holds a per-session mutex). Distinct Sessions of the same
//     Client may run concurrently.
//   - The Encoder must be safe for concurrent Encode calls (every encoder
//     in internal/embed is, once training stops).
type Client struct {
	opts  Options
	cache *cache.Cache
	// tau holds math.Float32bits of the current threshold; CAS keeps
	// concurrent feedback adjustments from losing updates.
	tau atomic.Uint32

	// probeBufs and matchBufs are bounded free lists (channel-backed, so
	// recycling a slice never boxes it into an interface) for the two
	// per-request buffers of the query hot path: the probe embedding and
	// the candidate match list. Lookup draws from them; the serving layer
	// returns probe buffers via Recycle once the response is written.
	// Callers that never Recycle simply allocate per call, as before.
	probeBufs chan []float32
	matchBufs chan []cache.Match

	// activity counters for the experiments and the serving stats API
	llmQueries   atomic.Int64
	cacheHits    atomic.Int64
	degradedHits atomic.Int64
	searchNanos  atomic.Int64
	searchCount  atomic.Int64
}

// New builds a Client. It panics if no encoder is supplied, because every
// other operation is meaningless without one.
func New(opts Options) *Client {
	if opts.Encoder == nil {
		panic("core: Options.Encoder is required")
	}
	if opts.Policy == nil {
		opts.Policy = cache.LRU{}
	}
	dim := opts.Encoder.Dim()
	if opts.IndexFactory != nil {
		return NewWithCache(opts, cache.NewWithIndex(dim, opts.Capacity, opts.Policy, opts.IndexFactory(dim)))
	}
	return NewWithCache(opts, cache.New(dim, opts.Capacity, opts.Policy))
}

// NewWithCache builds a Client around an existing cache — typically one
// rebuilt from persistent storage with cache.LoadFrom, as the serving
// layer does when it revives an evicted tenant. The cache's dimension must
// match the encoder's.
func NewWithCache(opts Options, cc *cache.Cache) *Client {
	if opts.Encoder == nil {
		panic("core: Options.Encoder is required")
	}
	if opts.TopK <= 0 {
		opts.TopK = 5
	}
	if opts.CtxTau == 0 {
		opts.CtxTau = opts.Tau
	}
	if opts.MaintenanceGate != nil {
		cc.SetGate(opts.MaintenanceGate)
	}
	if opts.Searcher == nil {
		opts.Searcher = cache.DirectSearcher{}
	}
	c := &Client{
		opts:      opts,
		cache:     cc,
		probeBufs: make(chan []float32, 64),
		matchBufs: make(chan []cache.Match, 64),
	}
	c.tau.Store(math.Float32bits(opts.Tau))
	return c
}

// Cache exposes the underlying semantic cache (for persistence and the
// storage experiments).
func (c *Client) Cache() *cache.Cache { return c.cache }

// Options returns a copy of the client's configuration (with defaults
// applied), so a serving layer can rebuild an equivalent client around a
// reloaded cache. Note Tau() — not Options().Tau — is the live threshold.
func (c *Client) Options() Options { return c.opts }

// Tau reports the current similarity threshold.
func (c *Client) Tau() float32 { return math.Float32frombits(c.tau.Load()) }

// Result is the outcome of one query.
type Result struct {
	// Response is the text returned to the user.
	Response string
	// Hit reports whether the response came from the local cache.
	Hit bool
	// Entry is the matched cache entry on a hit, nil otherwise.
	Entry *cache.Entry
	// Score is the cosine similarity of the match (hits only).
	Score float32
	// Latency is the end-to-end time: semantic search for hits, search
	// plus LLM time for misses.
	Latency time.Duration
	// SearchTime isolates the semantic-search component of Latency
	// (probe encoding included — the historical meaning).
	SearchTime time.Duration
	// EncodeTime isolates the probe-encoding portion of SearchTime,
	// batch-wait included when the encoder micro-batches. The index
	// search proper is SearchTime - EncodeTime.
	EncodeTime time.Duration
	// UpstreamTime is the LLM call duration (misses only).
	UpstreamTime time.Duration
	// FillTime is the cache-insertion duration (misses only).
	FillTime time.Duration
	// Candidates counts the similar entries the index returned before
	// context filtering.
	Candidates int
	// Tier names the index tier that served the search ("flat", "ivf",
	// "hnsw"; "" when the index does not report one).
	Tier string
	// ProbeEmbedding is the submitted query's embedding, exposed so the
	// miss path can enrol the response without encoding the query a
	// second time (the serving hot path cares).
	ProbeEmbedding []float32
	// Degraded marks a hit served in cache-only degraded mode: the
	// upstream was unavailable and the match cleared only the relaxed
	// threshold (τ − DegradedTauDelta), not τ itself.
	Degraded bool
}

// encodeProbe embeds q, reusing a recycled probe buffer when the encoder
// supports the pooled path (embed.IntoEncoder).
func (c *Client) encodeProbe(q string) []float32 {
	ie, ok := c.opts.Encoder.(embed.IntoEncoder)
	if !ok {
		return c.opts.Encoder.Encode(q)
	}
	var buf []float32
	select {
	case buf = <-c.probeBufs:
	default:
		buf = make([]float32, 0, c.opts.Encoder.Dim())
	}
	return ie.EncodeInto(q, buf[:0])
}

// Recycle returns res's probe-embedding buffer to the client's pool and
// clears the field. Call it once the Result is fully consumed (the
// serving layer does, after writing the response); never touch
// res.ProbeEmbedding afterwards. Recycling is optional — skipping it
// just costs the allocation Lookup always used to pay.
func (c *Client) Recycle(res *Result) {
	if res.ProbeEmbedding == nil {
		return
	}
	select {
	case c.probeBufs <- res.ProbeEmbedding[:0]:
	default:
	}
	res.ProbeEmbedding = nil
}

// Lookup runs the cache-decision half of Algorithm 1: embed q, find similar
// cached queries, and verify the context chain of each candidate against
// ctxTexts (the conversation history, oldest first; empty for standalone
// queries). It performs no insertion and no LLM call.
func (c *Client) Lookup(q string, ctxTexts []string) Result {
	start := time.Now()
	eq := c.encodeProbe(q)
	encDone := time.Since(start)
	var mbuf []cache.Match
	select {
	case mbuf = <-c.matchBufs:
	default:
	}
	matches := c.opts.Searcher.FindSimilar(c.cache, eq, c.opts.TopK, c.Tau(), mbuf[:0])
	var res Result
	for _, m := range matches {
		if c.contextMatches(m.Entry, ctxTexts) {
			c.cache.Touch(m.Entry.ID)
			res = Result{
				Response: m.Entry.Response,
				Hit:      true,
				Entry:    m.Entry,
				Score:    m.Score,
			}
			break
		}
	}
	// The match buffer is dead past this point (the Result keeps only the
	// matched *Entry); scrub the entry pointers and recycle it.
	for i := range matches {
		matches[i] = cache.Match{}
	}
	select {
	case c.matchBufs <- matches[:0]:
	default:
	}
	res.ProbeEmbedding = eq
	res.Candidates = len(matches)
	res.Tier = c.cache.ServingTier()
	res.EncodeTime = encDone
	res.SearchTime = time.Since(start)
	res.Latency = res.SearchTime
	c.searchNanos.Add(int64(res.SearchTime))
	c.searchCount.Add(1)
	if res.Hit {
		c.cacheHits.Add(1)
	}
	return res
}

// contextMatches verifies Algorithm 1's context check: a standalone entry
// (empty chain) matches only an empty conversation context, and a
// contextual entry matches when each turn of its chain is semantically
// similar (≥ CtxTau) to the corresponding trailing turn of the submitted
// context.
func (c *Client) contextMatches(e *cache.Entry, ctxTexts []string) bool {
	chain := c.cache.Chain(e.ID)
	if len(chain) == 0 {
		return len(ctxTexts) == 0
	}
	if len(ctxTexts) < len(chain) {
		return false
	}
	tail := ctxTexts[len(ctxTexts)-len(chain):]
	for i, ancestor := range chain {
		ce := c.encodeProbe(tail[i])
		match := vecmath.Dot(ce, ancestor.Embedding) >= c.opts.CtxTau
		select { // the turn embedding is consumed; recycle its buffer
		case c.probeBufs <- ce[:0]:
		default:
		}
		if !match {
			return false
		}
	}
	return true
}

// Insert caches a query/response pair. parent is the cache entry ID of the
// conversational parent, or cache.NoParent for standalone queries. Returns
// the new entry's ID.
func (c *Client) Insert(q, response string, parent int) (int, error) {
	eq := c.opts.Encoder.Encode(q)
	return c.cache.Put(q, response, eq, parent)
}

// Query is the full Algorithm 1 for a standalone query: Lookup, then on a
// miss consult the LLM and enrol the result in the cache.
func (c *Client) Query(q string) (Result, error) {
	return c.queryWithContext(context.Background(), q, nil, cache.NoParent)
}

// QueryContext is Query with the request's context threaded through to
// the upstream call (when Options.LLM implements ContextLLM): client
// disconnects cancel the in-flight LLM call, deadlines propagate, and
// upstream shed decisions surface as *resilience.Rejection errors.
func (c *Client) QueryContext(ctx context.Context, q string) (Result, error) {
	return c.queryWithContext(ctx, q, nil, cache.NoParent)
}

func (c *Client) queryWithContext(ctx context.Context, q string, ctxTexts []string, parent int) (Result, error) {
	res := c.Lookup(q, ctxTexts)
	if res.Hit {
		return res, nil
	}
	if c.opts.LLM == nil {
		return res, fmt.Errorf("core: cache miss and no LLM configured")
	}
	var (
		resp string
		took time.Duration
	)
	if cl, ok := c.opts.LLM.(ContextLLM); ok {
		var err error
		resp, took, err = cl.QueryContext(ctx, q)
		if err != nil {
			res.UpstreamTime = took
			// Breaker open: the upstream is unreachable but the cache is
			// not — retry the lookup at the relaxed degraded threshold
			// before giving up on the request.
			if rej, isRej := resilience.AsRejection(err); isRej && rej.CacheOnly {
				if c.degradedLookup(&res, ctxTexts) {
					return res, nil
				}
			}
			return res, err
		}
	} else {
		resp, took = c.opts.LLM.Query(q)
	}
	c.llmQueries.Add(1)
	res.UpstreamTime = took
	// Reuse the embedding Lookup already computed rather than paying a
	// second encode on every miss.
	fillStart := time.Now()
	id, err := c.cache.Put(q, resp, res.ProbeEmbedding, parent)
	if err != nil && parent != cache.NoParent {
		// The conversational parent was evicted since the session last
		// touched it. Re-root rather than failing the query forever: the
		// entry is cached standalone and the session chains from it.
		parent = cache.NoParent
		id, err = c.cache.Put(q, resp, res.ProbeEmbedding, parent)
	}
	if err != nil {
		return res, fmt.Errorf("core: enrolling response: %w", err)
	}
	entry, _ := c.cache.Get(id)
	res.FillTime = time.Since(fillStart)
	res.Response = resp
	res.Entry = entry
	res.Latency = res.SearchTime + took
	return res, nil
}

// degradedLookup retries a missed lookup at the relaxed degraded
// threshold (τ − DegradedTauDelta), reusing the probe embedding res
// already carries. It mutates res into a degraded hit and returns true
// when a context-consistent match clears the relaxed bar.
func (c *Client) degradedLookup(res *Result, ctxTexts []string) bool {
	if c.opts.DegradedTauDelta <= 0 || res.ProbeEmbedding == nil {
		return false
	}
	tau := c.Tau() - c.opts.DegradedTauDelta
	if tau < 0 {
		tau = 0
	}
	start := time.Now()
	var mbuf []cache.Match
	select {
	case mbuf = <-c.matchBufs:
	default:
	}
	matches := c.cache.FindSimilarAppend(res.ProbeEmbedding, c.opts.TopK, tau, mbuf[:0])
	for _, m := range matches {
		if c.contextMatches(m.Entry, ctxTexts) {
			c.cache.Touch(m.Entry.ID)
			res.Response = m.Entry.Response
			res.Hit = true
			res.Degraded = true
			res.Entry = m.Entry
			res.Score = m.Score
			break
		}
	}
	for i := range matches {
		matches[i] = cache.Match{}
	}
	select {
	case c.matchBufs <- matches[:0]:
	default:
	}
	res.SearchTime += time.Since(start)
	res.Latency = res.SearchTime + res.UpstreamTime
	if res.Hit {
		c.cacheHits.Add(1)
		c.degradedHits.Add(1)
	}
	return res.Hit
}

// ReportFalseHit is the user-feedback signal of §III-A.2: the user re-asked
// the LLM after a cache hit, so the hit was wrong. The threshold rises by
// FeedbackStep (clamped to 1) to make future matches stricter.
func (c *Client) ReportFalseHit() {
	if c.opts.FeedbackStep > 0 {
		c.adjustTau(c.opts.FeedbackStep)
	}
}

// ReportMissedHit is the complementary feedback signal of the online FL
// loop: the user indicates a query should have been answered from the
// cache (a missed duplicate), so the threshold drops by FeedbackStep
// (clamped to 0) to make future matches more permissive. Like
// ReportFalseHit it is a coarse per-user adjustment; the federated τ
// search refines both signals into the aggregated global threshold.
func (c *Client) ReportMissedHit() {
	if c.opts.FeedbackStep > 0 {
		c.adjustTau(-c.opts.FeedbackStep)
	}
}

// adjustTau applies a feedback step to τ with a lost-update-free CAS,
// clamping to [0, 1].
func (c *Client) adjustTau(delta float32) {
	for {
		old := c.tau.Load()
		tau := math.Float32frombits(old) + delta
		if tau > 1 {
			tau = 1
		}
		if tau < 0 {
			tau = 0
		}
		if c.tau.CompareAndSwap(old, math.Float32bits(tau)) {
			return
		}
	}
}

// SetTau installs a new threshold (e.g. a freshly aggregated τ_global).
func (c *Client) SetTau(tau float32) { c.tau.Store(math.Float32bits(tau)) }

// Reembed migrates every cached entry to the client's current encoder —
// the per-tenant half of a hot model rollout. The serving layer swaps the
// shared encoder (an embed.Swappable) first, then calls Reembed on each
// resident tenant so cached embeddings rejoin the probe embedding space.
// Queries are never blocked: the cache applies updates in short batches
// (see cache.Reembed). Returns the number of entries migrated.
func (c *Client) Reembed() (int, error) {
	return c.cache.Reembed(c.opts.Encoder.Encode)
}

// Stats summarises the client's activity.
type Stats struct {
	LLMQueries int
	CacheHits  int
	// DegradedHits counts hits served in cache-only degraded mode (a
	// subset of CacheHits).
	DegradedHits  int
	Lookups       int
	MeanSearch    time.Duration
	CacheEntries  int
	StorageBytes  int64
	EmbeddingDims int
}

// Stats returns a snapshot of activity counters. The counters are read
// individually, so a snapshot taken during concurrent traffic is
// internally approximate (e.g. Lookups may include a search whose hit is
// not yet counted) but each counter is exact.
func (c *Client) Stats() Stats {
	n := c.searchCount.Load()
	s := Stats{
		LLMQueries:    int(c.llmQueries.Load()),
		CacheHits:     int(c.cacheHits.Load()),
		DegradedHits:  int(c.degradedHits.Load()),
		Lookups:       int(n),
		CacheEntries:  c.cache.Len(),
		StorageBytes:  c.cache.StorageBytes(),
		EmbeddingDims: c.opts.Encoder.Dim(),
	}
	if n > 0 {
		s.MeanSearch = time.Duration(c.searchNanos.Load() / n)
	}
	return s
}
