package core

import (
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/index"
	"repro/internal/llmsim"
	"repro/internal/store"
	"repro/internal/train"
)

// TestEndToEndOverHTTP drives the full deployment topology: a MeanCache
// client on "the user's device" fronting the simulated LLM web service
// over a real HTTP connection (Figure 1). Cache hits must avoid the
// network entirely.
func TestEndToEndOverHTTP(t *testing.T) {
	svc := llmsim.New(llmsim.DefaultConfig())
	srv, err := llmsim.Serve(svc, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	enc := newStub(64)
	enc.alias(1, "what is federated learning", "explain federated learning to me")
	client := New(Options{
		Encoder: enc,
		LLM:     llmsim.NewClient(srv.Addr()),
		Tau:     0.8,
	})

	r1, err := client.Query("what is federated learning")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.Hit {
		t.Fatal("first query hit an empty cache")
	}
	if svc.Queries() != 1 {
		t.Fatalf("service saw %d queries, want 1", svc.Queries())
	}

	r2, err := client.Query("explain federated learning to me")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r2.Hit {
		t.Fatal("paraphrase missed")
	}
	if svc.Queries() != 1 {
		t.Fatalf("cache hit still reached the service: %d queries", svc.Queries())
	}
	if r2.Response != r1.Response {
		t.Fatal("cached response differs from the service's")
	}
}

// TestTrainedEndToEnd exercises the real pipeline end to end with no
// stubs: train an encoder on the synthetic corpus, find its cache-aware
// threshold, deploy it in a client, and verify semantic (not just exact)
// hits on fresh realisations of cached intents.
func TestTrainedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trained end-to-end test skipped in -short mode")
	}
	cfg := dataset.DefaultConfig()
	cfg.Concepts = 300
	cfg.Intents = 400
	corpus := dataset.GenerateCorpus(cfg)

	arch := embed.MPNetSim
	arch.Vocab = 4096
	arch.EmbDim = 96
	arch.OutDim = 192
	m := embed.NewModel(arch, 5)
	tcfg := train.DefaultConfig()
	tcfg.Epochs = 3
	train.NewTrainer(m, train.NewSGD(tcfg.LR), tcfg).Train(corpus.Train)
	tau := train.CacheSweep(m, corpus.Val[:150], 0.01, 0.5).Optimal.Tau

	llm := llmsim.New(llmsim.DefaultConfig())
	client := New(Options{Encoder: m, LLM: llm, Tau: float32(tau)})

	// Populate with one realisation per intent; probe with fresh
	// paraphrases of a sample of them.
	w := dataset.GenerateCacheWorkload(cfg, 200, 100, 0.5)
	for _, q := range w.Cached {
		if _, err := client.Query(q); err != nil {
			t.Fatalf("populate: %v", err)
		}
	}
	hits, dups := 0, 0
	falseHits, nonDups := 0, 0
	for _, p := range w.Probes {
		res := client.Lookup(p.Text, nil)
		if p.DupOf >= 0 {
			dups++
			if res.Hit {
				hits++
			}
		} else {
			nonDups++
			if res.Hit {
				falseHits++
			}
		}
	}
	if hits < dups/2 {
		t.Errorf("semantic hit rate %d/%d below 50%%", hits, dups)
	}
	if falseHits > nonDups/3 {
		t.Errorf("false hits %d/%d above 33%%", falseHits, nonDups)
	}
	t.Logf("tau=%.2f hits=%d/%d falseHits=%d/%d", tau, hits, dups, falseHits, nonDups)
}

// TestPersistentClientLifecycle runs the full local lifecycle: query,
// persist the cache to disk, reload into a new client, and verify hits
// survive the restart.
func TestPersistentClientLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.db")
	enc := newStub(32)
	enc.alias(2, "persistent question", "persistent question again")
	llm := &stubLLM{}

	client := New(Options{Encoder: enc, LLM: llm, Tau: 0.9})
	r, err := client.Query("persistent question")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Cache().SaveTo(st); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	st.Close()

	// "Restart": fresh store handle, fresh cache, fresh client.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	loaded, err := cache.LoadFrom(st2, enc.Dim(), 0, cache.LRU{})
	if err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("loaded %d entries, want 1", loaded.Len())
	}
	e := loaded.Entries()[0]
	if e.Query != "persistent question" || e.Response != r.Response {
		t.Fatal("persisted entry corrupted")
	}
}

// TestClientWithIVFIndexedCache verifies core works on top of an
// IVF-indexed cache (the large-cache configuration).
func TestClientWithIVFIndexedCache(t *testing.T) {
	enc := newStub(32)
	enc.alias(3, "find me", "find me too")
	llm := &stubLLM{}
	c := New(Options{Encoder: enc, LLM: llm, Tau: 0.9})
	// Swap in an IVF-backed cache via the same options the harness uses.
	ivfCache := cache.NewWithIndex(32, 0, cache.LRU{},
		index.NewIVF(32, index.IVFConfig{NList: 4, NProbe: 4, TrainSize: 10, Seed: 1}))
	c.cache = ivfCache

	for i := 0; i < 20; i++ {
		if _, err := c.Query("filler query number " + string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Query("find me")
	res := c.Lookup("find me too", nil)
	if !res.Hit {
		t.Fatal("IVF-backed client missed a duplicate")
	}
}
