package core

import (
	"context"

	"repro/internal/cache"
)

// Session is a stateful conversation with the LLM service through the
// cache. It tracks the conversation history and the cache entry of the
// previous turn, so follow-up queries are looked up against — and enrolled
// with — the correct context chain (Figure 1's workflow).
//
// A Session is not safe for concurrent use: confine it to one goroutine
// or serialise Ask/Reset calls externally. Distinct Sessions of the same
// Client may run concurrently (see the Client concurrency contract).
type Session struct {
	client  *Client
	history []string
	parent  int
}

// NewSession starts an empty conversation.
func (c *Client) NewSession() *Session {
	return &Session{client: c, parent: cache.NoParent}
}

// Turns reports how many queries this session has asked.
func (s *Session) Turns() int { return len(s.history) }

// Ask submits the next query of the conversation. The first query of a
// session is standalone; each subsequent query is contextual, verified
// against cached context chains and cached with the previous turn as its
// parent.
func (s *Session) Ask(q string) (Result, error) {
	return s.AskContext(context.Background(), q)
}

// AskContext is Ask with the request's context threaded through to the
// upstream call on a miss (see Client.QueryContext).
func (s *Session) AskContext(ctx context.Context, q string) (Result, error) {
	res, err := s.client.queryWithContext(ctx, q, s.history, s.parent)
	if err != nil {
		return res, err
	}
	s.history = append(s.history, q)
	if res.Entry != nil {
		// Continue the conversation from the matched or inserted entry, so
		// a later follow-up chains onto it.
		s.parent = res.Entry.ID
	}
	return res, nil
}

// Reset starts a new conversation in place, clearing history and context.
func (s *Session) Reset() {
	s.history = s.history[:0]
	s.parent = cache.NoParent
}
