package core

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/vecmath"
)

// stubEncoder gives tests precise control over similarity: texts mapped to
// the same vector are perfect duplicates; unmapped texts hash to pseudo-
// random unit vectors (almost orthogonal in high dimension).
type stubEncoder struct {
	dim int
	m   map[string][]float32
}

func newStub(dim int) *stubEncoder {
	return &stubEncoder{dim: dim, m: make(map[string][]float32)}
}

// alias maps texts to a shared deterministic unit vector keyed by seed.
func (s *stubEncoder) alias(seed int64, texts ...string) {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, s.dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	for _, t := range texts {
		s.m[t] = v
	}
}

func (s *stubEncoder) Encode(text string) []float32 {
	if v, ok := s.m[text]; ok {
		return vecmath.Clone(v)
	}
	var h int64
	for _, r := range text {
		h = h*131 + int64(r)
	}
	rng := rand.New(rand.NewSource(h))
	v := make([]float32, s.dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	vecmath.Normalize(v)
	return v
}

func (s *stubEncoder) Dim() int     { return s.dim }
func (s *stubEncoder) Name() string { return "stub" }

// stubLLM counts calls and returns a canned response.
type stubLLM struct {
	calls int
	took  time.Duration
}

func (l *stubLLM) Query(q string) (string, time.Duration) {
	l.calls++
	return "llm says: " + q, l.took
}

func newTestClient(t *testing.T, enc *stubEncoder, llm LLM) *Client {
	t.Helper()
	return New(Options{
		Encoder: enc,
		LLM:     llm,
		Tau:     0.8,
		TopK:    5,
	})
}

func TestNewPanicsWithoutEncoder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted empty Options")
		}
	}()
	New(Options{})
}

func TestMissThenHit(t *testing.T) {
	enc := newStub(64)
	enc.alias(1, "how to plot a line", "draw a line plot")
	llm := &stubLLM{took: 100 * time.Millisecond}
	c := newTestClient(t, enc, llm)

	r1, err := c.Query("how to plot a line")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.Hit {
		t.Fatal("first query hit an empty cache")
	}
	if llm.calls != 1 {
		t.Fatalf("LLM calls = %d, want 1", llm.calls)
	}
	if !strings.Contains(r1.Response, "how to plot a line") {
		t.Fatalf("unexpected response %q", r1.Response)
	}

	// Paraphrase (same stub vector) must hit without an LLM call.
	r2, err := c.Query("draw a line plot")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r2.Hit {
		t.Fatal("paraphrase missed")
	}
	if llm.calls != 1 {
		t.Fatalf("LLM consulted on a cache hit: %d calls", llm.calls)
	}
	if r2.Response != r1.Response {
		t.Fatal("hit returned different response than cached")
	}
	if r2.Score < 0.99 {
		t.Fatalf("hit score = %v, want ≈1", r2.Score)
	}
	if r2.Latency >= r1.Latency {
		t.Fatalf("cache hit latency %v not below miss latency %v", r2.Latency, r1.Latency)
	}
}

func TestUnrelatedQueryMisses(t *testing.T) {
	enc := newStub(64)
	llm := &stubLLM{}
	c := newTestClient(t, enc, llm)
	c.Query("completely about cooking pasta")
	r, _ := c.Query("entirely about quantum physics")
	if r.Hit {
		t.Fatal("unrelated query produced a false hit")
	}
	if llm.calls != 2 {
		t.Fatalf("LLM calls = %d, want 2", llm.calls)
	}
}

func TestContextChainVerification(t *testing.T) {
	enc := newStub(64)
	enc.alias(10, "parent A", "parent A paraphrase")
	enc.alias(11, "parent B")
	enc.alias(12, "change the color to red", "please change the color to red")
	c := New(Options{Encoder: enc, Tau: 0.8, TopK: 5})

	// Cache: parent A (standalone) and its follow-up.
	pa, err := c.Insert("parent A", "resp A", cache.NoParent)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := c.Insert("change the color to red", "resp follow", pa); err != nil {
		t.Fatalf("Insert child: %v", err)
	}

	// Same follow-up under the same context (paraphrased parent): hit.
	r := c.Lookup("please change the color to red", []string{"parent A paraphrase"})
	if !r.Hit {
		t.Fatal("contextual duplicate missed")
	}
	if r.Response != "resp follow" {
		t.Fatalf("wrong response %q", r.Response)
	}

	// Same follow-up under a different context: must miss (the paper's Q4).
	r = c.Lookup("please change the color to red", []string{"parent B"})
	if r.Hit {
		t.Fatal("context-mismatched follow-up produced a false hit")
	}

	// Follow-up submitted with no context: must miss (chain arity).
	r = c.Lookup("please change the color to red", nil)
	if r.Hit {
		t.Fatal("contextual entry matched a standalone submission")
	}

	// Standalone cached entry must not match a contextual submission.
	r = c.Lookup("parent A paraphrase", []string{"parent B"})
	if r.Hit {
		t.Fatal("standalone entry matched a contextual submission")
	}

	// Standalone-to-standalone still works.
	r = c.Lookup("parent A paraphrase", nil)
	if !r.Hit {
		t.Fatal("standalone duplicate missed")
	}
}

func TestLongerHistoryMatchesTrailingChain(t *testing.T) {
	enc := newStub(64)
	enc.alias(20, "root question")
	enc.alias(21, "make it bigger", "also make it bigger")
	c := New(Options{Encoder: enc, Tau: 0.8, TopK: 5})
	root, _ := c.Insert("root question", "r", cache.NoParent)
	c.Insert("make it bigger", "bigger!", root)

	// Submitted history has an extra leading turn; the trailing turn
	// matches the cached chain.
	r := c.Lookup("also make it bigger", []string{"unrelated preamble", "root question"})
	if !r.Hit {
		t.Fatal("trailing-context match failed")
	}
}

func TestSessionChainsConversation(t *testing.T) {
	enc := newStub(64)
	enc.alias(30, "draw a circle")
	enc.alias(31, "change the color to red", "change color to red")
	llm := &stubLLM{}
	c := newTestClient(t, enc, llm)

	s1 := c.NewSession()
	if _, err := s1.Ask("draw a circle"); err != nil {
		t.Fatalf("Ask: %v", err)
	}
	if _, err := s1.Ask("change the color to red"); err != nil {
		t.Fatalf("Ask follow-up: %v", err)
	}
	if llm.calls != 2 {
		t.Fatalf("LLM calls = %d, want 2", llm.calls)
	}
	if s1.Turns() != 2 {
		t.Fatalf("Turns = %d, want 2", s1.Turns())
	}

	// A second identical conversation is served fully from cache.
	s2 := c.NewSession()
	r1, _ := s2.Ask("draw a circle")
	r2, _ := s2.Ask("change color to red")
	if !r1.Hit || !r2.Hit {
		t.Fatalf("repeat conversation not served from cache: %v %v", r1.Hit, r2.Hit)
	}
	if llm.calls != 2 {
		t.Fatalf("LLM re-consulted: %d calls", llm.calls)
	}

	// A different conversation with the same follow-up text must go to
	// the LLM (different context).
	enc.alias(32, "draw a square")
	s3 := c.NewSession()
	s3.Ask("draw a square")
	r, _ := s3.Ask("change color to red")
	if r.Hit {
		t.Fatal("follow-up hit across different conversations")
	}
	if llm.calls != 4 {
		t.Fatalf("LLM calls = %d, want 4", llm.calls)
	}
}

func TestSessionReset(t *testing.T) {
	enc := newStub(16)
	llm := &stubLLM{}
	c := newTestClient(t, enc, llm)
	s := c.NewSession()
	s.Ask("first")
	s.Reset()
	if s.Turns() != 0 {
		t.Fatal("Reset did not clear history")
	}
	// After reset the next query is standalone again.
	r, _ := s.Ask("second")
	if r.Hit {
		t.Fatal("fresh standalone query hit")
	}
}

func TestFeedbackRaisesTau(t *testing.T) {
	enc := newStub(16)
	c := New(Options{Encoder: enc, Tau: 0.7, FeedbackStep: 0.05})
	c.ReportFalseHit()
	if got := c.Tau(); got != 0.75 {
		t.Fatalf("Tau after feedback = %v, want 0.75", got)
	}
	for i := 0; i < 20; i++ {
		c.ReportFalseHit()
	}
	if got := c.Tau(); got > 1 {
		t.Fatalf("Tau exceeded 1: %v", got)
	}
	c.SetTau(0.8)
	if c.Tau() != 0.8 {
		t.Fatal("SetTau ignored")
	}
}

func TestFeedbackDisabledByDefault(t *testing.T) {
	enc := newStub(16)
	c := New(Options{Encoder: enc, Tau: 0.7})
	c.ReportFalseHit()
	if c.Tau() != 0.7 {
		t.Fatal("feedback adjusted tau despite FeedbackStep=0")
	}
}

func TestQueryWithoutLLMErrors(t *testing.T) {
	enc := newStub(16)
	c := New(Options{Encoder: enc, Tau: 0.7})
	if _, err := c.Query("no upstream"); err == nil {
		t.Fatal("Query without LLM succeeded on a miss")
	}
}

func TestStats(t *testing.T) {
	enc := newStub(32)
	enc.alias(40, "q", "q dup")
	llm := &stubLLM{}
	c := newTestClient(t, enc, llm)
	c.Query("q")
	c.Query("q dup")
	st := c.Stats()
	if st.LLMQueries != 1 || st.CacheHits != 1 || st.Lookups != 2 || st.CacheEntries != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.EmbeddingDims != 32 {
		t.Fatalf("EmbeddingDims = %d, want 32", st.EmbeddingDims)
	}
	if st.StorageBytes <= 0 {
		t.Fatal("StorageBytes not accounted")
	}
}

func TestCapacityEviction(t *testing.T) {
	enc := newStub(16)
	llm := &stubLLM{}
	c := New(Options{Encoder: enc, LLM: llm, Tau: 0.9, Capacity: 3})
	for _, q := range []string{"a", "b", "c", "d", "e"} {
		if _, err := c.Query(q); err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
	}
	if got := c.Cache().Len(); got != 3 {
		t.Fatalf("cache len = %d, want capacity 3", got)
	}
}

// TestSessionSurvivesParentEviction: when another insertion path evicts a
// session's conversational parent, the session's next miss must re-root
// (cache standalone) instead of failing every subsequent query.
func TestSessionSurvivesParentEviction(t *testing.T) {
	enc := newStub(16)
	llm := &stubLLM{}
	c := New(Options{Encoder: enc, LLM: llm, Tau: 0.9, Capacity: 2})
	s := c.NewSession()
	if _, err := s.Ask("turn one"); err != nil {
		t.Fatal(err)
	}
	// Standalone inserts (empty protected chain) evict the session's
	// parent out from under it.
	for _, q := range []string{"filler a", "filler b", "filler c"} {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Ask("turn two")
	if err != nil {
		t.Fatalf("Ask after parent eviction: %v", err)
	}
	if res.Hit {
		t.Fatal("expected a miss (nothing similar cached)")
	}
	if res.Entry == nil || res.Entry.Parent != cache.NoParent {
		t.Errorf("re-rooted entry parent = %+v, want NoParent", res.Entry)
	}
	// The session must keep working from the re-rooted entry.
	if _, err := s.Ask("turn three"); err != nil {
		t.Fatalf("Ask after re-root: %v", err)
	}
}
