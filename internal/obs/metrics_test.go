package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", Label{"kind", "a"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registering the same series returns the same handle.
	if again := r.Counter("test_ops_total", "ops", Label{"kind", "a"}); again != c {
		t.Fatalf("re-registration returned a new counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Fatalf("sum = %v, want 5.605", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.01"} 1`,
		`test_lat_seconds_bucket{le="0.1"} 3`,
		`test_lat_seconds_bucket{le="1"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionParsesAndLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_reqs_total", "requests served", Label{"result", "hit"}).Add(7)
	r.Counter("x_reqs_total", "requests served", Label{"result", "miss"}).Add(3)
	r.Gauge("x_depth", "queue depth").Set(4)
	r.GaugeFunc("x_live", "live objects", func() float64 { return 12 })
	r.CounterFunc("x_forwards_total", "forwards", func() float64 { return 9 })
	h := r.Histogram("x_lat_seconds", "latency", DefLatencyBounds, Label{"tier", "flat"})
	h.ObserveDuration(150 * time.Microsecond)
	h.ObserveDuration(40 * time.Millisecond)
	r.Histogram("x_lat_seconds", "latency", DefLatencyBounds, Label{"tier", "hnsw"}).Observe(0.3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Value("x_reqs_total", map[string]string{"result": "hit"}); !ok || v != 7 {
		t.Fatalf("x_reqs_total{result=hit} = %v, %v", v, ok)
	}
	if v, ok := exp.Value("x_live", nil); !ok || v != 12 {
		t.Fatalf("x_live = %v, %v", v, ok)
	}
	if v, ok := exp.Value("x_lat_seconds_count", map[string]string{"tier": "flat"}); !ok || v != 2 {
		t.Fatalf("x_lat_seconds_count{tier=flat} = %v, %v", v, ok)
	}
	if fam := exp.Families["x_lat_seconds"]; fam == nil || fam.Type != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", exp.Families["x_lat_seconds"])
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":          "foo 1\n",
		"bad value":        "# TYPE foo counter\nfoo x\n",
		"dup series":       "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"bad label":        "# TYPE foo counter\nfoo{1bad=\"x\"} 1\n",
		"unterminated":     "# TYPE foo counter\nfoo{a=\"x} 1\n",
		"bad type":         "# TYPE foo banana\nfoo 1\n",
		"histogram no inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram cum": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition([]byte(text)); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escapes", Label{"v", "a\"b\\c\nd"}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	if v, ok := exp.Value("esc_total", map[string]string{"v": "a\"b\\c\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v %v\n%s", v, ok, buf.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	h := r.Histogram("conc_seconds", "h", DefLatencyBounds)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%100) / 1e4)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
					if _, err := ParseExposition(buf.Bytes()); err != nil {
						t.Errorf("mid-flight exposition invalid: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_seconds", "h", DefLatencyBounds)
	c := r.Counter("alloc_total", "c")
	n := testing.AllocsPerRun(1000, func() {
		h.Observe(0.001)
		c.Inc()
	})
	if n != 0 {
		t.Fatalf("metric updates allocated %v per op, want 0", n)
	}
}
