package obs

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Span blob codec: the compact binary form of a span list carried in a
// cluster ForwardResponse so an origin node can stitch the owner's
// child spans into its trace. Node attribution is not encoded — the
// origin knows which node answered and stamps it on merge (AddRemote).
//
// Layout (little-endian): u16 span count, then per span
//
//	kind u8 | tier u8 | candidates u32 | start u64 | dur u64
//
// Start/Dur are nanoseconds as two's-complement int64.

// MaxWireSpans bounds how many spans DecodeSpans accepts — the codec's
// corruption guard, comfortably above MaxSpans.
const MaxWireSpans = 64

const spanWireSize = 1 + 1 + 4 + 8 + 8

// MaxSpanBlob is the largest blob AppendSpans can produce (and DecodeSpans
// accept) — the size cap transports embedding a blob should enforce.
const MaxSpanBlob = 2 + MaxWireSpans*spanWireSize

// AppendSpans appends the blob encoding of spans to dst.
func AppendSpans(dst []byte, spans []Span) []byte {
	if len(spans) > MaxWireSpans {
		spans = spans[:MaxWireSpans]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(spans)))
	for _, s := range spans {
		dst = append(dst, byte(s.Kind), s.Tier)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Candidates))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Start))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Dur))
	}
	return dst
}

// DecodeSpans parses a blob produced by AppendSpans.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("obs: span blob truncated")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if n > MaxWireSpans {
		return nil, fmt.Errorf("obs: span blob count %d exceeds %d", n, MaxWireSpans)
	}
	if len(b) != 2+n*spanWireSize {
		return nil, fmt.Errorf("obs: span blob length %d, want %d", len(b), 2+n*spanWireSize)
	}
	spans := make([]Span, n)
	off := 2
	for i := range spans {
		spans[i] = Span{
			Kind:       SpanKind(b[off]),
			Tier:       b[off+1],
			Candidates: int32(binary.LittleEndian.Uint32(b[off+2:])),
			Start:      time.Duration(binary.LittleEndian.Uint64(b[off+6:])),
			Dur:        time.Duration(binary.LittleEndian.Uint64(b[off+14:])),
		}
		off += spanWireSize
	}
	return spans, nil
}
