package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a small Prometheus text-exposition parser — enough to
// lint /metrics output in CI without external dependencies, and to let
// cmd/loadgen read stage histograms at phase boundaries. It understands
// the 0.0.4 text format subset the Registry emits: # HELP / # TYPE
// comments, sample lines with optional labels, and histogram
// _bucket/_sum/_count triples.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix.
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricFamily groups the samples of one declared family.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed /metrics payload.
type Exposition struct {
	Families map[string]*MetricFamily
}

// ParseExposition parses and validates a Prometheus text exposition. It
// is strict: malformed lines, samples without a preceding # TYPE,
// duplicate series, and inconsistent histograms (non-cumulative buckets,
// missing +Inf, +Inf != _count) are errors.
func ParseExposition(data []byte) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*MetricFamily)}
	seen := make(map[string]bool) // duplicate-series detection
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		// Exact family name first, then with histogram suffixes stripped —
		// so a counter that happens to end in _count still resolves.
		fam := exp.Families[s.Name]
		if fam == nil || fam.Type == "" {
			fam = exp.Families[familyName(s.Name)]
		}
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", ln+1, s.Name)
		}
		key := s.Name + "{" + canonicalLabelKey(s.Labels) + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", ln+1, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range exp.Families {
		if fam.Type == "histogram" {
			if err := lintHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		fam := e.family(fields[2])
		if len(fields) == 4 {
			fam.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRE.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		fam := e.family(fields[2])
		if fam.Type != "" {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", fields[2])
		}
		fam.Type = fields[3]
	}
	return nil
}

func (e *Exposition) family(name string) *MetricFamily {
	fam, ok := e.Families[name]
	if !ok {
		fam = &MetricFamily{Name: name}
		e.Families[name] = fam
	}
	return fam
}

// familyName strips the histogram sample suffixes so _bucket/_sum/_count
// lines attach to their declared family.
func familyName(sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(sample, suffix); base != sample {
			return base
		}
	}
	return sample
}

// parseSampleLine parses `name{l1="v1",l2="v2"} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !metricNameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := findLabelEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		valueField = rest[:sp]
		ts := strings.TrimSpace(rest[sp+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", ts)
		}
	}
	v, err := parseValue(valueField)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// findLabelEnd locates the closing brace, honouring quoted values with
// escapes.
func findLabelEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		if !labelNameRE.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c in label value", body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value for %q", name)
		}
		i++ // closing quote
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		labels[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' between labels in %q", body)
			}
			i++
		}
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid sample value %q", s)
	}
	return v, nil
}

func canonicalLabelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// lintHistogram checks one histogram family: per label set (le
// excluded), buckets must be cumulative with ascending le bounds, end in
// +Inf, and agree with _count; _sum and _count must be present.
func lintHistogram(fam *MetricFamily) error {
	type hist struct {
		les      []float64
		cums     []float64
		sum      *float64
		count    *float64
	}
	groups := make(map[string]*hist)
	group := func(labels map[string]string) *hist {
		filtered := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				filtered[k] = v
			}
		}
		key := canonicalLabelKey(filtered)
		g, ok := groups[key]
		if !ok {
			g = &hist{}
			groups[key] = g
		}
		return g
	}
	for i := range fam.Samples {
		s := &fam.Samples[i]
		g := group(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("bucket sample without le label")
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("invalid le %q", leStr)
			}
			g.les = append(g.les, le)
			g.cums = append(g.cums, s.Value)
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			g.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			g.count = &v
		default:
			return fmt.Errorf("unexpected sample %s in histogram family", s.Name)
		}
	}
	for key, g := range groups {
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("series {%s}: missing _sum or _count", key)
		}
		if len(g.les) == 0 {
			return fmt.Errorf("series {%s}: no buckets", key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("series {%s}: le bounds not ascending", key)
			}
			if g.cums[i] < g.cums[i-1] {
				return fmt.Errorf("series {%s}: bucket counts not cumulative", key)
			}
		}
		last := len(g.les) - 1
		if !math.IsInf(g.les[last], 1) {
			return fmt.Errorf("series {%s}: missing +Inf bucket", key)
		}
		if g.cums[last] != *g.count {
			return fmt.Errorf("series {%s}: +Inf bucket %v != _count %v", key, g.cums[last], *g.count)
		}
	}
	return nil
}

// Value looks up one sample by full sample name and exact label set
// (order-insensitive). It returns false when absent.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	fam, ok := e.Families[name]
	if !ok || fam.Type == "" {
		fam, ok = e.Families[familyName(name)]
	}
	if !ok || fam == nil {
		return 0, false
	}
	want := canonicalLabelKey(labels)
	for _, s := range fam.Samples {
		if s.Name == name && canonicalLabelKey(s.Labels) == want {
			return s.Value, true
		}
	}
	return 0, false
}
