// Package obs is the observability layer: a low-overhead metrics
// registry exported in Prometheus text format (metrics.go,
// prometheus.go) and a pooled per-request span tracer with head sampling
// and slow-trace capture (trace.go). Both are built for the serving hot
// path — metric updates are lock-free atomics and a warmed traced
// request performs no allocation — so instrumentation can stay on in
// production without disturbing the latencies it measures.
package obs

import (
	"fmt"
	"hash/fnv"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration (Counter, Gauge, Histogram, …) takes a shard
// lock and is expected at startup; the returned handles update via
// lock-free atomics, so the hot path never contends on the registry. The
// family map is sharded by name hash so even registration-time lookups
// from many goroutines do not serialise.
type Registry struct {
	shards [registryShards]registryShard
}

const registryShards = 8

type registryShard struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// series is one labelled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels []Label // sorted by name
	key    string  // canonical rendered label set, e.g. `tier="flat"`

	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() float64
	gaugeFn   func() float64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].families = make(map[string]*family)
	}
	return r
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) family(name, help string, kind metricKind) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	sh := &r.shards[h.Sum32()%registryShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, ok := sh.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		sh.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// canonical sorts labels by name and renders the canonical series key.
// The returned slice is a copy; the caller's labels are not modified.
func canonical(labels []Label) ([]Label, string) {
	if len(labels) == 0 {
		return nil, ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	key := ""
	for i, l := range ls {
		if !labelNameRE.MatchString(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Name))
		}
		if i > 0 {
			key += ","
		}
		key += l.Name + `="` + escapeLabelValue(l.Value) + `"`
	}
	return ls, key
}

// seriesFor returns the family's series for the label set, creating it
// via mk on first registration. Re-registering an existing series
// returns the original, so package-level wiring can be idempotent.
func (f *family) seriesFor(labels []Label, mk func(*series)) *series {
	ls, key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: ls, key: key}
	mk(s)
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.family(name, help, kindCounter).seriesFor(labels, func(s *series) {
		s.counter = &Counter{}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q re-registered over a callback series", name))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for subsystems that already keep their own atomic
// counters. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, kindCounter).seriesFor(labels, func(s *series) {
		s.counterFn = fn
	})
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.family(name, help, kindGauge).seriesFor(labels, func(s *series) {
		s.gauge = &Gauge{}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q re-registered over a callback series", name))
	}
	return s.gauge
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, kindGauge).seriesFor(labels, func(s *series) {
		s.gaugeFn = fn
	})
}

// Histogram registers (or fetches) a fixed-boundary histogram. bounds
// must be strictly increasing upper bucket bounds (the +Inf bucket is
// implicit); all series of one family must share them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: metric %q bounds not strictly increasing", name))
		}
	}
	f := r.family(name, help, kindHistogram)
	s := f.seriesFor(labels, func(s *series) {
		s.hist = newHistogram(bounds)
	})
	if len(s.hist.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: metric %q re-registered with different bounds", name))
	}
	for i, b := range bounds {
		if s.hist.bounds[i] != b {
			panic(fmt.Sprintf("obs: metric %q re-registered with different bounds", name))
		}
	}
	return s.hist
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 gauge. The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (CAS loop; gauges are read-mostly).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-boundary histogram: per-bucket atomic counts plus
// an exact sum/count — constant memory however long the process runs,
// unlike a reservoir. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds — the Prometheus base unit for
// time.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reads the exact sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefLatencyBounds are the default request/stage latency bucket bounds in
// seconds: 25µs to 2.5s, roughly ×2 per step — tight where the cache hit
// path lives, wide enough to bucket a slow upstream LLM call.
var DefLatencyBounds = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	250e-3, 500e-3, 1, 2.5,
}

// DefBatchBounds bucket encoder batch sizes (powers of two up to the
// default MaxBatch ×2).
var DefBatchBounds = []float64{1, 2, 4, 8, 16, 32, 64}
