package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind names one stage of a request's lifecycle.
type SpanKind uint8

const (
	// SpanDecode covers reading and unmarshalling the request body.
	SpanDecode SpanKind = iota + 1
	// SpanEncode covers probe embedding, batch-wait included when the
	// tenant encodes through the micro-batcher.
	SpanEncode
	// SpanSearch covers the index search proper; it carries the serving
	// tier and candidate count.
	SpanSearch
	// SpanUpstream covers the upstream LLM call on a miss.
	SpanUpstream
	// SpanCacheFill covers inserting the upstream answer into the cache.
	SpanCacheFill
	// SpanRespond covers serialising and writing the response.
	SpanRespond
	// SpanForward covers a cluster-mode forward to the owning node; the
	// owner's child spans stitch under it with their Node set.
	SpanForward
)

func (k SpanKind) String() string {
	switch k {
	case SpanDecode:
		return "decode"
	case SpanEncode:
		return "encode"
	case SpanSearch:
		return "search"
	case SpanUpstream:
		return "upstream"
	case SpanCacheFill:
		return "cachefill"
	case SpanRespond:
		return "respond"
	case SpanForward:
		return "forward"
	default:
		return "unknown"
	}
}

// Serving-tier identifiers carried on search spans. TierID/TierName map
// to the string names internal/index reports.
const (
	TierUnknown uint8 = iota
	TierFlat
	TierIVF
	TierHNSW
)

// TierID maps an index tier name to its span identifier.
func TierID(name string) uint8 {
	switch name {
	case "flat":
		return TierFlat
	case "ivf":
		return TierIVF
	case "hnsw":
		return TierHNSW
	default:
		return TierUnknown
	}
}

// TierName is the inverse of TierID ("" for TierUnknown).
func TierName(id uint8) string {
	switch id {
	case TierFlat:
		return "flat"
	case TierIVF:
		return "ivf"
	case TierHNSW:
		return "hnsw"
	default:
		return ""
	}
}

// MaxSpans is the fixed span capacity of a trace. A request touches at
// most ~7 stages; forwarded requests add the owner's child spans, so 16
// leaves headroom. Past the cap, Add drops the span (the trace is still
// published — truncated beats lost).
const MaxSpans = 16

// Span is one recorded stage. Start is the offset from the trace start;
// remote spans merged from a forward keep their owner-side offsets
// (clocks across nodes are not compared — only durations are).
type Span struct {
	Kind       SpanKind
	Tier       uint8 // search spans: serving index tier
	Candidates int32 // search spans: matches the index returned
	Node       string // non-empty on spans stitched in from a remote node
	Start      time.Duration
	Dur        time.Duration
}

// Trace is one request's span buffer. Traces are pooled and fixed-size:
// the tracer hands them out on Start and reclaims them on Finish (or
// when they age out of the recent ring), so a warmed traced request
// allocates nothing.
type Trace struct {
	ID     uint64
	Node   string
	Path   string
	User   string
	Begin  time.Time
	Total  time.Duration
	Hit    bool
	Status int

	sampled bool // head-sampled at Start
	slow    bool // published by the slow-threshold rule, not sampling
	remote  bool // collected for a forwarding origin; never published here
	n       int
	spans   [MaxSpans]Span
}

// Add appends a span and returns a pointer into the trace's buffer so
// the caller can set Tier/Candidates/Node in place. On a nil trace or a
// full buffer it returns nil. Not safe for concurrent use — a trace
// belongs to one request goroutine at a time.
func (t *Trace) Add(kind SpanKind, start, dur time.Duration) *Span {
	if t == nil || t.n >= MaxSpans {
		return nil
	}
	s := &t.spans[t.n]
	t.n++
	*s = Span{Kind: kind, Start: start, Dur: dur}
	return s
}

// AddRemote stitches child spans collected on node into the trace,
// typically decoded from a ForwardResponse span blob.
func (t *Trace) AddRemote(node string, spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		if t.n >= MaxSpans {
			return
		}
		s.Node = node
		t.spans[t.n] = s
		t.n++
	}
}

// Spans exposes the recorded spans (a view into the trace's buffer,
// valid until the trace is finished/released).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.n]
}

// Sampled reports whether the trace was head-sampled at Start (remote
// traces always are — the origin made the decision).
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

func (t *Trace) reset() {
	for i := range t.spans[:t.n] {
		t.spans[i] = Span{}
	}
	*t = Trace{}
}

// TracerConfig tunes a Tracer.
type TracerConfig struct {
	// Node names this process in traces (the cluster self address, or
	// e.g. "local" when not clustered).
	Node string
	// SampleRate is the head-sampling probability in (0, 1]: rate r
	// publishes roughly one in round(1/r) traces. A rate <= 0 disables
	// tracing entirely — NewTracer returns nil, and a nil *Tracer is a
	// no-op on every method.
	SampleRate float64
	// SlowThreshold, when positive, publishes any trace at least this
	// slow even when it lost the head-sampling draw — the "why was that
	// request 40ms" net.
	SlowThreshold time.Duration
	// RingSize caps the recent-traces ring served at /v1/debug/traces.
	// Defaults to 64.
	RingSize int
}

// Tracer hands out pooled traces, decides which to keep, and serves the
// recent ring. All methods are nil-safe so call sites need no
// enabled-checks, and the disabled (-trace-sample 0) configuration is
// literally a nil pointer — zero overhead, zero allocation.
type Tracer struct {
	node  string
	every uint64 // head-sample 1 in every
	slow  time.Duration

	seq  atomic.Uint64
	ids  atomic.Uint64
	free chan *Trace

	mu   sync.Mutex
	ring []*Trace // nil slots until the ring fills
	next int

	started   atomic.Uint64
	published atomic.Uint64
	slowKept  atomic.Uint64
}

// NewTracer builds a tracer, or returns nil when cfg.SampleRate <= 0:
// a zero sample rate disables tracing entirely, slow capture included —
// that is the -trace-sample 0 "exactly zero overhead" contract.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleRate <= 0 {
		return nil
	}
	every := uint64(math.Round(1 / cfg.SampleRate))
	if every < 1 {
		every = 1
	}
	ring := cfg.RingSize
	if ring <= 0 {
		ring = 64
	}
	if cfg.Node == "" {
		cfg.Node = "local"
	}
	tr := &Tracer{
		node:  cfg.Node,
		every: every,
		slow:  cfg.SlowThreshold,
		free:  make(chan *Trace, 256),
		ring:  make([]*Trace, ring),
	}
	// Scatter trace IDs across nodes: same counter sequence, different
	// node prefix.
	h := fnv.New64a()
	h.Write([]byte(cfg.Node))
	tr.ids.Store(h.Sum64() << 20)
	return tr
}

// Enabled reports whether the tracer records anything.
func (tr *Tracer) Enabled() bool { return tr != nil }

// Node reports the tracer's node name ("" when disabled).
func (tr *Tracer) Node() string {
	if tr == nil {
		return ""
	}
	return tr.node
}

func (tr *Tracer) get() *Trace {
	select {
	case t := <-tr.free:
		return t
	default:
		return &Trace{}
	}
}

// Release returns a trace to the pool without publishing. Only needed by
// owners of remote traces (see StartRemote); local traces are reclaimed
// by Finish.
func (tr *Tracer) Release(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	t.reset()
	select {
	case tr.free <- t:
	default:
	}
}

// Start begins a trace for one request. Every request gets a (pooled)
// trace while the tracer is enabled — the slow-threshold rule needs the
// spans even for requests that lost the sampling draw; Finish recycles
// the unkept ones. Returns nil on a nil tracer.
func (tr *Tracer) Start(path string) *Trace {
	if tr == nil {
		return nil
	}
	t := tr.get()
	t.ID = tr.ids.Add(1)
	t.Node = tr.node
	t.Path = path
	t.Begin = time.Now()
	t.sampled = tr.every == 1 || tr.seq.Add(1)%tr.every == 0
	tr.started.Add(1)
	return t
}

// StartRemote begins a trace on behalf of a forwarding origin node: the
// origin's trace ID is kept so the stitched trace is one logical trace,
// and the result is never published here — the forward handler harvests
// its spans into the ForwardResponse and must Release it.
func (tr *Tracer) StartRemote(id uint64, path string) *Trace {
	if tr == nil {
		return nil
	}
	t := tr.get()
	t.ID = id
	t.Node = tr.node
	t.Path = path
	t.Begin = time.Now()
	t.sampled = true
	t.remote = true
	tr.started.Add(1)
	return t
}

// Finish completes a trace: head-sampled traces and traces at or over
// the slow threshold are published to the recent ring; everything else
// is recycled. Remote traces are left untouched for their forward
// handler. Nil-safe.
func (tr *Tracer) Finish(t *Trace, total time.Duration) {
	if tr == nil || t == nil {
		return
	}
	t.Total = total
	if t.remote {
		return
	}
	if t.sampled {
		tr.publish(t)
		return
	}
	if tr.slow > 0 && total >= tr.slow {
		t.slow = true
		tr.slowKept.Add(1)
		tr.publish(t)
		return
	}
	tr.Release(t)
}

// Abandon releases a trace without publishing — the request-error exit.
// Remote traces are left alone (their forward handler still harvests and
// releases them). Nil-safe on both sides.
func (tr *Tracer) Abandon(t *Trace) {
	if tr == nil || t == nil || t.remote {
		return
	}
	tr.Release(t)
}

func (tr *Tracer) publish(t *Trace) {
	tr.published.Add(1)
	tr.mu.Lock()
	old := tr.ring[tr.next]
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.mu.Unlock()
	if old != nil {
		tr.Release(old)
	}
}

// Stats reports lifetime counters: traces started, published to the
// ring, and published by the slow rule specifically.
func (tr *Tracer) Stats() (started, published, slow uint64) {
	if tr == nil {
		return 0, 0, 0
	}
	return tr.started.Load(), tr.published.Load(), tr.slowKept.Load()
}

// TraceSnapshot is the JSON form of one published trace.
type TraceSnapshot struct {
	ID          string         `json:"id"`
	Node        string         `json:"node"`
	Path        string         `json:"path"`
	User        string         `json:"user,omitempty"`
	Begin       time.Time      `json:"begin"`
	TotalMicros int64          `json:"total_micros"`
	Hit         bool           `json:"hit"`
	Status      int            `json:"status,omitempty"`
	Slow        bool           `json:"slow,omitempty"`
	Spans       []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is the JSON form of one span.
type SpanSnapshot struct {
	Kind        string `json:"kind"`
	Node        string `json:"node,omitempty"`
	Tier        string `json:"tier,omitempty"`
	Candidates  int32  `json:"candidates,omitempty"`
	StartMicros int64  `json:"start_micros"`
	DurMicros   int64  `json:"dur_micros"`
}

// Recent snapshots the published-trace ring, newest first.
func (tr *Tracer) Recent() []TraceSnapshot {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		// Walk backwards from the most recently written slot.
		idx := (tr.next - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		t := tr.ring[idx]
		if t == nil {
			continue
		}
		snap := TraceSnapshot{
			ID:          fmt.Sprintf("%016x", t.ID),
			Node:        t.Node,
			Path:        t.Path,
			User:        t.User,
			Begin:       t.Begin,
			TotalMicros: t.Total.Microseconds(),
			Hit:         t.Hit,
			Status:      t.Status,
			Slow:        t.slow,
			Spans:       make([]SpanSnapshot, 0, t.n),
		}
		for _, sp := range t.spans[:t.n] {
			snap.Spans = append(snap.Spans, SpanSnapshot{
				Kind:        sp.Kind.String(),
				Node:        sp.Node,
				Tier:        TierName(sp.Tier),
				Candidates:  sp.Candidates,
				StartMicros: sp.Start.Microseconds(),
				DurMicros:   sp.Dur.Microseconds(),
			})
		}
		out = append(out, snap)
	}
	return out
}

// Handler serves the recent-trace ring as JSON — the /v1/debug/traces
// endpoint.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Traces []TraceSnapshot `json:"traces"`
		}{Traces: tr.Recent()})
	})
}

// traceKey carries a *Trace through a request context — how cluster mode
// hands the remote trace to the serving handlers without changing their
// signatures.
type traceKey struct{}

// ContextWithTrace attaches t to ctx.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the trace attached by ContextWithTrace, or nil.
// The lookup key is a zero-size struct, so calling this on a context
// without a trace performs no allocation.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
