package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTracerDisabledIsNil(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0})
	if tr != nil {
		t.Fatalf("sample rate 0 should yield a nil tracer")
	}
	if tr.Enabled() {
		t.Fatalf("nil tracer reports enabled")
	}
	// Every method must be a no-op on nil.
	tc := tr.Start("/v1/query")
	if tc != nil {
		t.Fatalf("nil tracer produced a trace")
	}
	tc.Add(SpanDecode, 0, time.Microsecond)
	tr.Finish(tc, time.Millisecond)
	tr.Release(tc)
	if got := tr.Recent(); got != nil {
		t.Fatalf("nil tracer has recent traces: %v", got)
	}
}

func TestTracerHeadSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{Node: "n1", SampleRate: 0.25, RingSize: 64})
	published := 0
	for i := 0; i < 100; i++ {
		tc := tr.Start("/v1/query")
		if tc == nil {
			t.Fatalf("enabled tracer returned nil trace")
		}
		tc.Add(SpanDecode, 0, time.Microsecond)
		if tc.Sampled() {
			published++
		}
		tr.Finish(tc, 100*time.Microsecond)
	}
	if published != 25 {
		t.Fatalf("sampled %d of 100 at rate 0.25, want exactly 25 (deterministic)", published)
	}
	_, pub, slow := tr.Stats()
	if pub != 25 || slow != 0 {
		t.Fatalf("stats published=%d slow=%d, want 25, 0", pub, slow)
	}
	if got := len(tr.Recent()); got != 25 {
		t.Fatalf("ring holds %d traces, want 25", got)
	}
}

func TestTracerSlowCapture(t *testing.T) {
	// Sampling rate so low nothing head-samples in this test; only the
	// slow rule publishes.
	tr := NewTracer(TracerConfig{Node: "n1", SampleRate: 1e-9, SlowThreshold: 10 * time.Millisecond})
	fast := tr.Start("/v1/query")
	tr.Finish(fast, time.Millisecond)
	slowT := tr.Start("/v1/query")
	slowT.Add(SpanUpstream, 0, 40*time.Millisecond)
	tr.Finish(slowT, 41*time.Millisecond)
	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("ring holds %d traces, want 1 (the slow one)", len(recent))
	}
	if !recent[0].Slow || recent[0].TotalMicros != 41000 {
		t.Fatalf("slow trace snapshot wrong: %+v", recent[0])
	}
	_, pub, slow := tr.Stats()
	if pub != 1 || slow != 1 {
		t.Fatalf("stats published=%d slow=%d, want 1, 1", pub, slow)
	}
}

func TestTraceSpanCapAndRecycle(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, RingSize: 2})
	tc := tr.Start("/p")
	for i := 0; i < MaxSpans+5; i++ {
		tc.Add(SpanEncode, 0, time.Microsecond)
	}
	if len(tc.Spans()) != MaxSpans {
		t.Fatalf("span cap not enforced: %d", len(tc.Spans()))
	}
	first := tc
	tr.Finish(tc, time.Millisecond)
	// Publish two more; the first trace must be evicted, reset, and
	// become reusable through the pool.
	tr.Finish(tr.Start("/p"), time.Millisecond)
	tr.Finish(tr.Start("/p"), time.Millisecond)
	reused := tr.Start("/p")
	if reused == first && len(reused.Spans()) != 0 {
		t.Fatalf("recycled trace kept %d spans", len(reused.Spans()))
	}
}

func TestTracerStartFinishAllocFree(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1, RingSize: 8})
	// Warm the pool: ring (8) + in-flight.
	for i := 0; i < 32; i++ {
		tr.Finish(tr.Start("/p"), time.Millisecond)
	}
	n := testing.AllocsPerRun(500, func() {
		tc := tr.Start("/p")
		tc.Add(SpanDecode, 0, time.Microsecond)
		s := tc.Add(SpanSearch, time.Microsecond, 50*time.Microsecond)
		s.Tier = TierFlat
		s.Candidates = 3
		tr.Finish(tc, 60*time.Microsecond)
	})
	if n != 0 {
		t.Fatalf("traced request allocated %v per op, want 0", n)
	}
}

func TestRemoteTraceStitching(t *testing.T) {
	origin := NewTracer(TracerConfig{Node: "a:1", SampleRate: 1, RingSize: 8})
	owner := NewTracer(TracerConfig{Node: "b:2", SampleRate: 1e-9, RingSize: 8})

	ot := origin.Start("/v1/query")
	ot.User = "u1"
	ot.Add(SpanDecode, 0, 5*time.Microsecond)

	// Owner side: remote trace keyed by the origin's ID, never published
	// on the owner.
	rt := owner.StartRemote(ot.ID, "/v1/query")
	rt.Add(SpanEncode, 0, 200*time.Microsecond)
	sp := rt.Add(SpanSearch, 200*time.Microsecond, 80*time.Microsecond)
	sp.Tier = TierHNSW
	sp.Candidates = 7
	rt.Add(SpanUpstream, 300*time.Microsecond, 2*time.Millisecond)
	owner.Finish(rt, 3*time.Millisecond)
	blob := AppendSpans(nil, rt.Spans())
	owner.Release(rt)
	if got := len(owner.Recent()); got != 0 {
		t.Fatalf("remote trace published on owner: %d traces", got)
	}

	spans, err := DecodeSpans(blob)
	if err != nil {
		t.Fatal(err)
	}
	ot.Add(SpanForward, 5*time.Microsecond, 3*time.Millisecond)
	ot.AddRemote("b:2", spans)
	origin.Finish(ot, 3100*time.Microsecond)

	recent := origin.Recent()
	if len(recent) != 1 {
		t.Fatalf("origin ring holds %d traces, want 1", len(recent))
	}
	tr := recent[0]
	kinds := map[string]SpanSnapshot{}
	for _, s := range tr.Spans {
		kinds[s.Kind] = s
	}
	for _, want := range []string{"decode", "forward", "encode", "search", "upstream"} {
		if _, ok := kinds[want]; !ok {
			t.Fatalf("stitched trace missing %s span: %+v", want, tr.Spans)
		}
	}
	if kinds["search"].Node != "b:2" || kinds["search"].Tier != "hnsw" || kinds["search"].Candidates != 7 {
		t.Fatalf("remote search span lost attribution: %+v", kinds["search"])
	}
	if kinds["forward"].Node != "" {
		t.Fatalf("local forward span has node attribution: %+v", kinds["forward"])
	}
}

func TestSpanBlobRejectsCorrupt(t *testing.T) {
	spans := []Span{{Kind: SpanSearch, Tier: TierIVF, Candidates: 4, Start: time.Microsecond, Dur: time.Millisecond}}
	blob := AppendSpans(nil, spans)
	got, err := DecodeSpans(blob)
	if err != nil || len(got) != 1 || got[0] != spans[0] {
		t.Fatalf("round trip: %v %v", got, err)
	}
	for name, b := range map[string][]byte{
		"empty":     {},
		"short":     blob[:len(blob)-1],
		"long":      append(append([]byte(nil), blob...), 0),
		"bad count": {0xff, 0xff},
	} {
		if _, err := DecodeSpans(b); err == nil {
			t.Errorf("%s: decode accepted corrupt blob", name)
		}
	}
}

func TestTraceContext(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 1})
	tc := tr.Start("/p")
	ctx := ContextWithTrace(context.Background(), tc)
	if got := TraceFrom(ctx); got != tc {
		t.Fatalf("TraceFrom = %v, want %v", got, tc)
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty) = %v, want nil", got)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer(TracerConfig{Node: "n1", SampleRate: 1, RingSize: 4})
	tc := tr.Start("/v1/query")
	tc.Hit = true
	tc.Status = 200
	s := tc.Add(SpanSearch, 0, 90*time.Microsecond)
	s.Tier = TierFlat
	tr.Finish(tc, 100*time.Microsecond)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces", nil))
	var body struct {
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler returned invalid JSON: %v", err)
	}
	if len(body.Traces) != 1 || !body.Traces[0].Hit || body.Traces[0].Spans[0].Tier != "flat" {
		t.Fatalf("handler body wrong: %+v", body)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 0.5, SlowThreshold: time.Nanosecond, RingSize: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tc := tr.Start("/p")
				tc.Add(SpanDecode, 0, time.Microsecond)
				tr.Finish(tc, time.Microsecond)
				if i%50 == 0 {
					tr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	started, _, _ := tr.Stats()
	if started != 4000 {
		t.Fatalf("started = %d, want 4000", started)
	}
}
