package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and series in stable
// sorted order so successive scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var fams []*family
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, f := range sh.families {
			fams = append(fams, f)
		}
		sh.mu.Unlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// Handler serves WritePrometheus over HTTP — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	sort.Slice(series, func(i, j int) bool { return series[i].key < series[j].key })

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')
	for _, s := range series {
		switch {
		case s.counter != nil:
			writeSample(w, f.name, "", s.key, "", float64(s.counter.Value()))
		case s.counterFn != nil:
			writeSample(w, f.name, "", s.key, "", s.counterFn())
		case s.gauge != nil:
			writeSample(w, f.name, "", s.key, "", s.gauge.Value())
		case s.gaugeFn != nil:
			writeSample(w, f.name, "", s.key, "", s.gaugeFn())
		case s.hist != nil:
			s.hist.write(w, f.name, s.key)
		}
	}
}

// write renders one histogram series: cumulative le buckets, then _sum
// and _count. Bucket counts are read low-to-high after the totals, so a
// concurrent Observe can only make the rendered +Inf bucket equal to the
// rendered _count (both loads ordered the same way) — the exposition
// stays self-consistent enough for the in-repo linter.
func (h *Histogram) write(w *bufio.Writer, name, key string) {
	count := h.count.Load()
	sum := h.Sum()
	var cum uint64
	total := uint64(0)
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	// A racing Observe may have bumped a bucket after count was read;
	// clamp so the linter invariant (+Inf bucket == _count) holds.
	if total > count {
		count = total
	}
	for i, b := range h.bounds {
		cum += counts[i]
		writeSample(w, name, "_bucket", key, `le="`+formatFloat(b)+`"`, float64(cum))
	}
	writeSample(w, name, "_bucket", key, `le="+Inf"`, float64(count))
	writeSample(w, name, "_sum", key, "", sum)
	writeSample(w, name, "_count", key, "", float64(count))
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(w *bufio.Writer, name, suffix, key, extra string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if key != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(key)
		if key != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
