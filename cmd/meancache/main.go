// Command meancache is an interactive MeanCache client: queries typed on
// stdin are served through a persistent local semantic cache in front of a
// simulated LLM web service (optionally a remote one over HTTP).
//
// Usage:
//
//	meancache                            # fresh untrained encoder, local LLM sim
//	meancache -model model.gob -tau 0.8  # FL-trained encoder from fltrain
//	meancache -cache ~/.meancache.db     # persistent cache across runs
//	meancache -llm 127.0.0.1:8080        # front a remote llmsim HTTP service
//
// Commands: plain text submits a query in the current conversation;
// "/new" starts a new conversation; "/stats" prints cache statistics;
// "/quit" exits (persisting the cache if -cache is set).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/store"
)

func main() {
	var (
		modelPath = flag.String("model", "", "FL-trained model file from fltrain (empty = fresh encoder)")
		archName  = flag.String("arch", "mpnet-sim", "encoder architecture when -model is empty")
		tau       = flag.Float64("tau", 0.8, "cosine similarity threshold")
		cachePath = flag.String("cache", "", "persistent cache file (empty = in-memory only)")
		llmAddr   = flag.String("llm", "", "remote llmsim HTTP address (empty = in-process simulator)")
		capacity  = flag.Int("capacity", 0, "max cache entries (0 = unbounded)")
	)
	flag.Parse()

	var enc *embed.Model
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		enc, err = embed.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %s encoder from %s\n", enc.Name(), *modelPath)
	} else {
		arch, err := embed.ArchByName(*archName)
		if err != nil {
			log.Fatal(err)
		}
		enc = embed.NewModel(arch, 1)
		fmt.Printf("using fresh %s encoder (run fltrain for a fine-tuned one)\n", enc.Name())
	}

	var llm core.LLM
	if *llmAddr != "" {
		llm = llmsim.NewClient(*llmAddr)
		fmt.Printf("fronting remote LLM service at %s\n", *llmAddr)
	} else {
		cfg := llmsim.DefaultConfig()
		cfg.Sleep = true // feel the latency a cache saves
		llm = llmsim.New(cfg)
		fmt.Println("fronting in-process simulated LLM service")
	}

	client := core.New(core.Options{
		Encoder:      enc,
		LLM:          llm,
		Tau:          float32(*tau),
		Capacity:     *capacity,
		Policy:       cache.LRU{},
		FeedbackStep: 0.01,
	})

	var st *store.Store
	if *cachePath != "" {
		var err error
		st, err = store.Open(*cachePath)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		if loaded, err := cache.LoadFrom(st, enc.Dim(), *capacity, cache.LRU{}); err == nil && loaded.Len() > 0 {
			// Re-insert persisted entries into the live client cache.
			restore(client, loaded)
			fmt.Printf("restored %d cached entries from %s\n", loaded.Len(), *cachePath)
		}
	}

	fmt.Println("type a query (/new = new conversation, /stats, /quit):")
	session := client.NewSession()
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "/quit":
			persist(client, st, *cachePath)
			return
		case line == "/new":
			session = client.NewSession()
			fmt.Println("(new conversation)")
			continue
		case line == "/stats":
			s := client.Stats()
			fmt.Printf("entries=%d hits=%d lookups=%d llm-queries=%d storage=%dB mean-search=%v tau=%.2f\n",
				s.CacheEntries, s.CacheHits, s.Lookups, s.LLMQueries, s.StorageBytes, s.MeanSearch, client.Tau())
			continue
		}
		start := time.Now()
		res, err := session.Ask(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		src := "LLM"
		if res.Hit {
			src = fmt.Sprintf("cache (score %.2f)", res.Score)
		}
		fmt.Printf("[%s, %v] %s\n", src, time.Since(start).Round(time.Millisecond), res.Response)
	}
	persist(client, st, *cachePath)
}

// restore copies entries from a loaded snapshot into the live cache,
// preserving parent links via an ID translation table.
func restore(client *core.Client, snapshot *cache.Cache) {
	idMap := make(map[int]int)
	entries := snapshot.Entries()
	// Parents have lower IDs than children (LoadFrom preserves IDs and
	// children always insert after parents), so insert in ID order.
	for inserted := 0; inserted < len(entries); {
		for _, e := range entries {
			if _, done := idMap[e.ID]; done {
				continue
			}
			parent := cache.NoParent
			if e.Parent != cache.NoParent {
				mapped, ok := idMap[e.Parent]
				if !ok {
					continue // parent not inserted yet
				}
				parent = mapped
			}
			id, err := client.Insert(e.Query, e.Response, parent)
			if err != nil {
				log.Printf("restoring entry %d: %v", e.ID, err)
			}
			idMap[e.ID] = id
			inserted++
		}
	}
}

func persist(client *core.Client, st *store.Store, path string) {
	if st == nil {
		return
	}
	if err := client.Cache().SaveTo(st); err != nil {
		log.Printf("persisting cache: %v", err)
		return
	}
	fmt.Printf("persisted %d entries to %s\n", client.Cache().Len(), path)
}
