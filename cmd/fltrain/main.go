// Command fltrain runs the federated fine-tuning of §III-A and saves the
// resulting global embedding model plus the aggregated threshold.
//
// It supports both deployments of internal/fl:
//
//	fltrain -mode local                      # in-process simulation (default)
//	fltrain -mode server -addr :7070 -clients 4
//	fltrain -mode client -addr host:7070 -id 0
//
// In server mode the process waits for -clients remote client hosts, then
// orchestrates rounds over TCP. In client mode the process hosts one FL
// client with a private shard and serves rounds until the server is done.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/fl"
	"repro/internal/train"
)

func main() {
	var (
		mode     = flag.String("mode", "local", "local | server | client")
		addr     = flag.String("addr", "127.0.0.1:7070", "server listen / dial address")
		archName = flag.String("arch", "mpnet-sim", "encoder architecture: mpnet-sim | albert-sim")
		clients  = flag.Int("clients", 20, "fleet size (local) or expected registrations (server)")
		perRound = flag.Int("per-round", 4, "clients sampled per round")
		rounds   = flag.Int("rounds", 50, "FL rounds")
		epochs   = flag.Int("epochs", 6, "local epochs per round")
		clientID = flag.Int("id", 0, "client ID (client mode)")
		seed     = flag.Int64("seed", 1, "master seed")
		outPath  = flag.String("o", "model.gob", "output path for the trained global model")
	)
	flag.Parse()

	arch, err := embed.ArchByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	if !arch.Trainable {
		log.Fatalf("architecture %s is frozen and cannot be FL-trained", arch.Name)
	}
	trainCfg := train.DefaultConfig()
	trainCfg.Epochs = *epochs

	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Seed = *seed
	corpus := dataset.GenerateCorpus(corpusCfg)
	shards := dataset.SplitPairs(corpus.Train, *clients, rand.New(rand.NewSource(*seed+200)))

	switch *mode {
	case "local":
		fleet := make([]fl.Client, *clients)
		for i := range fleet {
			fleet[i] = fl.NewLocalClient(i, arch, *seed+100, shards[i], trainCfg, 0.5)
		}
		runServer(arch, fleet, *rounds, *perRound, *seed, *outPath, corpus)

	case "server":
		hub, err := fl.Listen(*addr)
		if err != nil {
			log.Fatal(err)
		}
		defer hub.Close()
		log.Printf("waiting for %d clients on %s...", *clients, hub.Addr())
		fleet, err := hub.WaitForClients(*clients, 5*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		runServer(arch, fleet, *rounds, *perRound, *seed, *outPath, corpus)

	case "client":
		if *clientID < 0 || *clientID >= *clients {
			log.Fatalf("-id %d out of range [0, %d)", *clientID, *clients)
		}
		lc := fl.NewLocalClient(*clientID, arch, *seed+100, shards[*clientID], trainCfg, 0.5)
		log.Printf("client %d serving rounds via %s (%d private pairs)", *clientID, *addr, lc.Samples())
		if err := fl.ServeClient(*addr, lc); err != nil {
			log.Fatal(err)
		}

	default:
		log.Fatalf("unknown -mode %q", *mode)
	}
}

func runServer(arch embed.Arch, fleet []fl.Client, rounds, perRound int, seed int64, outPath string, corpus *dataset.Corpus) {
	global := embed.NewModel(arch, seed+100)
	srv := fl.NewServer(global, fleet, fl.ServerConfig{
		Rounds:          rounds,
		ClientsPerRound: perRound,
		Seed:            seed + 300,
		InitialTau:      0.7,
	})
	start := time.Now()
	err := srv.Run(func(ri fl.RoundInfo) {
		conf := train.EvaluateAt(global, corpus.Val, ri.GlobalTau)
		log.Printf("round %2d/%d  tau=%.3f  F1=%.3f  prec=%.3f  rec=%.3f  (clients %v)",
			ri.Round+1, rounds, ri.GlobalTau, conf.F1(), conf.Precision(), conf.Recall(), ri.Sampled)
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training finished in %v; tau_global=%.3f", time.Since(start).Round(time.Second), srv.Tau())

	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := global.Save(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved global model to %s (tau_global=%.3f)\n", outPath, srv.Tau())
}
