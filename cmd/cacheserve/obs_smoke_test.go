package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"
	"time"

	"repro/internal/obs"
)

var listenRE = regexp.MustCompile(`cacheserve listening on ([0-9.]+:[0-9]+)`)

// TestMetricsSmoke is the CI observability smoke: build the real binary,
// start it with -metrics and tracing on, drive a miss + hit through
// /v1/query, and lint the /metrics output with the in-repo exposition
// parser. It proves the flag wiring end to end, not just the packages.
func TestMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the cacheserve binary")
	}
	bin := filepath.Join(t.TempDir(), "cacheserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cacheserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-metrics",
		"-trace-sample", "1",
		"-trace-slow", "1ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting cacheserve: %v", err)
	}
	defer func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}()

	// The listen address is logged once the server is up; everything the
	// process prints is replayed on failure.
	var logged bytes.Buffer
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(io.TeeReader(stderr, &logged))
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("cacheserve never reported its listen address; log:\n%s", logged.String())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	query := func() {
		body := bytes.NewReader([]byte(`{"user":"smoke","query":"what is observability"}`))
		resp, err := client.Post("http://"+addr+"/v1/query", "application/json", body)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}
	query() // miss
	query() // hit

	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	exp, err := obs.ParseExposition(payload)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text exposition: %v\n%s", err, payload)
	}
	for _, check := range []struct {
		name   string
		labels map[string]string
		min    float64
	}{
		{"meancache_queries_total", map[string]string{"result": "hit"}, 1},
		{"meancache_queries_total", map[string]string{"result": "miss"}, 1},
		{"meancache_search_duration_seconds_count", map[string]string{"tier": "flat"}, 2},
		{"meancache_registry_resident_tenants", nil, 1},
	} {
		if v, ok := exp.Value(check.name, check.labels); !ok || v < check.min {
			t.Errorf("%s%v = %v (present %v), want >= %v", check.name, check.labels, v, ok, check.min)
		}
	}

	traces, err := client.Get(fmt.Sprintf("http://%s/v1/debug/traces", addr))
	if err != nil {
		t.Fatalf("fetching /v1/debug/traces: %v", err)
	}
	tbody, _ := io.ReadAll(traces.Body)
	traces.Body.Close()
	if traces.StatusCode != http.StatusOK || !bytes.Contains(tbody, []byte(`"spans"`)) {
		t.Fatalf("/v1/debug/traces status %d, body %s", traces.StatusCode, tbody)
	}
}
