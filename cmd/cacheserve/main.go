// Command cacheserve runs the multi-tenant semantic-cache serving layer:
// one HTTP process hosting a MeanCache client per user (internal/server),
// fronting an upstream LLM service. Misses are proxied upstream; hits are
// answered from the requesting user's local semantic cache.
//
// The upstream is either a network llmsim service (started with
// cmd/llmserve, the Figure 1 topology) or, with -upstream "", an
// in-process simulator in virtual-time mode — convenient for load tests
// that should not spend wall-clock time sleeping.
//
// With -fl the process additionally runs the online federated-learning
// coordinator (internal/flserve): live tenants' feedback and hit/miss
// signals accumulate into private per-tenant training shards, rounds
// sample cohorts of active tenants, fine-tune the shared encoder and
// aggregate the global threshold, and every new global model is committed
// to a versioned registry and hot-rolled into the running tenants.
//
// With -cluster the process becomes one node of a horizontally sharded
// deployment (internal/cluster): tenants place deterministically on a
// consistent-hash ring over the live members, requests for tenants owned
// by a peer are forwarded to it (bounded retries, one hedge on slow
// peers), and when membership changes — join, leave, or death detected by
// health probes — each node drains the tenants it no longer owns through
// the store-persistence path so the new owner revives them (τ, model
// version and index config intact). -persist-dir must point at storage
// all nodes share. GET /v1/cluster/status reports ring and peer health.
//
// Each tenant's similarity search runs on the index tier picked with
// -index: the built-in exact scan (default), flat, ivf, hnsw (optionally
// int8-quantized with -hnsw-int8), or adaptive — which starts every
// tenant on the exact scan and promotes to IVF and then HNSW as the
// cache grows (-tier-flat-max / -tier-ivf-max), migrating in the
// background. -tier-auto replaces those hard-coded thresholds with ones
// derived from a startup micro-calibration of this machine's scan speed.
// Indexed tenants stay indexed across evict/revive cycles.
//
// Concurrent searches against one hot tenant coalesce into single
// multi-probe index passes through the per-tenant search batcher
// (-search-batch / -search-batch-wait; -no-search-batch disables it).
// The default zero wait means batching adds no latency: requests share a
// pass only when they genuinely overlap.
//
// Resilience: -quota-rate enforces per-tenant token-bucket admission
// (429 + Retry-After past the burst), -limit-max puts an AIMD adaptive
// concurrency limiter with a bounded wait queue on the upstream miss
// path, and -breaker-window arms a circuit breaker over upstream
// outcomes. While the breaker is open the node serves cache-only: hits
// still answer (at τ relaxed by -tau-degraded), misses shed with 503 +
// Retry-After until half-open probes confirm the upstream healed. The
// same breaker tuning guards cluster peer forwards, hedged duplicates
// are suppressed while the limiter is saturated, and -maintenance-weight
// bounds background work (re-embeds, FL rounds) under a weighted
// semaphore. All error responses are structured JSON
// {"error","code","retry_after_ms"}.
//
// Observability: -metrics exposes a Prometheus text exposition at
// GET /metrics covering serving outcomes, per-stage and per-tier
// latency, registry/arena occupancy, the batcher, and — when enabled —
// the cluster and FL layers. -trace-sample head-samples per-request
// traces (decode → encode → search → upstream → respond spans, stitched
// across a cluster forward) into a recent ring at GET /v1/debug/traces;
// -trace-slow additionally keeps any trace at least that slow.
//
// Usage:
//
//	cacheserve -addr 127.0.0.1:8090 -upstream 127.0.0.1:8080
//	cacheserve -index adaptive -hnsw-int8
//	cacheserve -fl -fl-interval 30s -fl-dir /var/lib/cacheserve/fl
//	cacheserve -addr 10.0.0.1:8090 -cluster -peers 10.0.0.2:8090,10.0.0.3:8090 \
//	    -vnodes 128 -persist-dir /mnt/shared/tenants
//	curl -X POST localhost:8090/v1/query -d '{"user":"u1","query":"what is FL?"}'
//	curl -X POST localhost:8090/v1/fl/round
//	curl localhost:8090/v1/fl/status
//	curl localhost:8090/v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (side listener only)
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/flserve"
	"repro/internal/index"
	"repro/internal/llmsim"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/train"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "listen address")
		upstream = flag.String("upstream", "", "llmsim service address (host:port); empty runs an in-process simulator")
		sleep    = flag.Bool("sleep", false, "in-process upstream only: simulate inference latency with real sleeps")
		model    = flag.String("model", "", "path to a trained encoder saved by cmd/fltrain (overrides -arch)")
		arch     = flag.String("arch", "mpnet-sim", "encoder architecture when no -model is given")
		seed     = flag.Int64("seed", 1, "weight init seed for an untrained encoder")

		tau      = flag.Float64("tau", 0.83, "similarity threshold τ")
		ctxTau   = flag.Float64("ctx-tau", 0, "context-turn threshold (0 = same as -tau)")
		topK     = flag.Int("topk", 5, "candidates context-checked per query")
		capacity = flag.Int("tenant-capacity", 4096, "cache entries per tenant (0 = unbounded)")
		step     = flag.Float64("feedback-step", 0.01, "τ increase per false-hit report (0 disables)")

		indexKind  = flag.String("index", "scan", "per-tenant vector index: scan (the default slab-backed exact scan), flat (same, explicit), ivf, hnsw or adaptive")
		hnswM      = flag.Int("hnsw-m", 16, "HNSW links per node (level 0 allows 2×)")
		hnswEfCons = flag.Int("hnsw-ef-construction", 200, "HNSW insertion beam width")
		hnswEf     = flag.Int("hnsw-ef-search", 96, "HNSW query beam width")
		hnswInt8   = flag.Bool("hnsw-int8", false, "HNSW: score traversal against int8 codes, rescore top candidates in float32")
		ivfNList   = flag.Int("ivf-nlist", 64, "IVF inverted lists")
		ivfNProbe  = flag.Int("ivf-nprobe", 8, "IVF lists probed per query")
		tierFlat   = flag.Int("tier-flat-max", 4096, "adaptive: promote Flat→IVF past this entry count")
		tierIVF    = flag.Int("tier-ivf-max", 65536, "adaptive: promote IVF→HNSW past this entry count")
		tierAuto   = flag.Bool("tier-auto", false, "adaptive: derive the promotion thresholds from a startup micro-calibration of scan speed (overrides -tier-flat-max/-tier-ivf-max)")

		shards     = flag.Int("shards", 16, "tenant registry shards")
		maxTenants = flag.Int("max-tenants", 0, "resident tenant bound (0 = unbounded)")
		persistDir = flag.String("persist-dir", "", "directory for evicted tenants' caches (empty = drop on eviction)")

		clusterOn        = flag.Bool("cluster", false, "cluster mode: shard tenants across peers on a consistent-hash ring")
		peers            = flag.String("peers", "", "cluster: comma-separated peer addresses (host:port)")
		vnodes           = flag.Int("vnodes", cluster.DefaultVNodes, "cluster: virtual nodes per ring member")
		clusterHeartbeat = flag.Duration("cluster-heartbeat", 500*time.Millisecond, "cluster: peer health-probe period")
		clusterDeadAfter = flag.Int("cluster-dead-after", 3, "cluster: consecutive probe failures before a peer is dead")

		batch     = flag.Int("batch", 32, "embedding micro-batch size cap")
		batchWait = flag.Duration("batch-wait", 200*time.Microsecond, "micro-batch gather window")
		noBatch   = flag.Bool("no-batch", false, "disable the embedding micro-batcher")

		searchBatch     = flag.Int("search-batch", 32, "per-tenant search batch size cap")
		searchBatchWait = flag.Duration("search-batch-wait", 0, "search-batch gather window (0 = coalesce only already-queued searches, adding no latency)")
		noSearchBatch   = flag.Bool("no-search-batch", false, "disable the per-tenant search batcher")

		statsTenants = flag.Int("stats-tenants", 20, "per-tenant rows in /v1/stats (-1 = all)")

		quotaRate        = flag.Float64("quota-rate", 0, "per-tenant admission quota in requests/second (0 disables quotas)")
		quotaBurst       = flag.Float64("quota-burst", 0, "per-tenant quota burst capacity (0 = same as -quota-rate)")
		limitMax         = flag.Int("limit-max", 0, "upstream AIMD concurrency limiter ceiling (0 disables the limiter)")
		limitMin         = flag.Int("limit-min", 4, "limiter: concurrency floor the multiplicative decrease never goes below")
		limitQueue       = flag.Int("limit-queue", 128, "limiter: bounded wait-queue depth; arrivals beyond it are shed with 503")
		upstreamTimeout  = flag.Duration("upstream-timeout", 0, "per-call upstream deadline on the miss path (0 = none)")
		breakerWindow    = flag.Int("breaker-window", 0, "upstream circuit-breaker outcome window (0 disables the breaker)")
		breakerThreshold = flag.Float64("breaker-threshold", 0.5, "breaker: windowed failure ratio that trips it open")
		breakerCooloff   = flag.Duration("breaker-cooloff", 5*time.Second, "breaker: open-state cool-off before half-open probes")
		breakerProbes    = flag.Int("breaker-probes", 3, "breaker: half-open trial calls that must all succeed to close")
		tauDegraded      = flag.Float64("tau-degraded", 0.05, "cache-only degraded serving: relax τ by this delta while the breaker is open (0 disables)")
		maintWeight      = flag.Int64("maintenance-weight", 2, "weighted-semaphore capacity for background work (re-embeds, FL rounds); 0 ungates")

		metricsOn   = flag.Bool("metrics", false, "serve Prometheus text metrics at GET /metrics")
		traceSample = flag.Float64("trace-sample", 0, "request-trace head-sampling rate in (0, 1]; 0 disables tracing")
		traceSlow   = flag.Duration("trace-slow", 0, "with tracing on, also keep any trace at least this slow (GET /v1/debug/traces)")

		flOn       = flag.Bool("fl", false, "enable the online federated-learning coordinator")
		flInterval = flag.Duration("fl-interval", 0, "run FL rounds on this period (0 = only on POST /v1/fl/round)")
		flCohort   = flag.Int("fl-cohort", 4, "tenants sampled per FL round")
		flMinPairs = flag.Int("fl-min-pairs", 8, "collected pairs a tenant needs to join a cohort")
		flEpochs   = flag.Int("fl-epochs", 2, "local fine-tuning epochs per round")
		flSecure   = flag.Bool("fl-secure", false, "aggregate through pairwise-masked updates (secure agg)")
		flDir      = flag.String("fl-dir", "", "directory persisting model versions + collected shards (empty = in-memory)")
		flPCA      = flag.Int("fl-pca", 0, "attach a PCA basis of this dimension to committed versions (0 = off)")
		flBeta     = flag.Float64("fl-beta", 0.5, "F-beta of the clients' threshold search")

		pprofAddr = flag.String("pprof", "", "expose net/http/pprof on this side listener (e.g. 127.0.0.1:6060; empty = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The profiler gets its own listener so profiling traffic (and the
		// default mux it registers on) never mixes with the serving API.
		go func() {
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	var enc embed.Encoder
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatalf("opening model: %v", err)
		}
		m, err := embed.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		enc = m
	} else {
		a, err := embed.ArchByName(*arch)
		if err != nil {
			log.Fatal(err)
		}
		enc = embed.NewModel(a, *seed)
		log.Printf("warning: serving with an untrained %s encoder; pass -model for a trained one", *arch)
	}

	// With FL on, the base model serves through a swappable holder so
	// round rollouts can replace it atomically under live traffic. The
	// micro-batcher wraps the holder, so batches follow the swap.
	var swap *embed.Swappable
	var flArch embed.Arch
	if *flOn {
		m, ok := enc.(*embed.Model)
		if !ok || !m.Trainable() {
			log.Fatalf("-fl requires a trainable encoder (got %s)", enc.Name())
		}
		flArch = m.Cfg
		swap = embed.NewSwappable(m)
		enc = swap
	}

	var batcher *server.Batcher
	if !*noBatch {
		batcher = server.NewBatcher(enc, server.BatcherConfig{MaxBatch: *batch, MaxWait: *batchWait})
		defer batcher.Close()
		enc = batcher
	}

	// The search batcher coalesces concurrent probes against one hot
	// tenant into single multi-probe index passes. Tenants reach it via
	// core.Options.Searcher; the structural nil dance keeps a disabled
	// batcher a true nil interface.
	var searchBatcher *server.SearchBatcher
	var searcher cache.Searcher
	if !*noSearchBatch {
		searchBatcher = server.NewSearchBatcher(server.BatcherConfig{
			MaxBatch: *searchBatch, MaxWait: *searchBatchWait,
		})
		defer searchBatcher.Close()
		searcher = searchBatcher
	}

	var llm core.LLM
	var upstreamCaller resilience.Caller
	if *upstream != "" {
		c := llmsim.NewClient(*upstream)
		llm, upstreamCaller = c, c
	} else {
		cfg := llmsim.DefaultConfig()
		cfg.Sleep = *sleep
		s := llmsim.New(cfg)
		llm, upstreamCaller = s, s
		log.Printf("using in-process simulated LLM upstream (sleep=%v)", *sleep)
	}

	// The resilience governor assembles whichever overload-protection
	// mechanisms the flags enable: per-tenant quotas at the front door,
	// AIMD limiter + circuit breaker on the upstream miss path (the
	// Guard below), and the maintenance semaphore for background work.
	gov := resilience.NewGovernor(resilience.GovernorConfig{
		Quota: resilience.QuotaConfig{Rate: *quotaRate, Burst: *quotaBurst},
		Limiter: resilience.LimiterConfig{
			MinLimit: *limitMin, MaxLimit: *limitMax, MaxQueue: *limitQueue,
		},
		Breaker: resilience.BreakerConfig{
			Window: *breakerWindow, FailureRatio: *breakerThreshold,
			OpenFor: *breakerCooloff, HalfOpenProbes: *breakerProbes,
		},
		MaintenanceWeight: *maintWeight,
	})
	if gov.Limiter != nil || gov.Breaker != nil || *upstreamTimeout > 0 {
		llm = resilience.NewGuard(upstreamCaller, gov, *upstreamTimeout)
	}
	// The gate interfaces are structural; hand the semaphore over only
	// when it exists, so a disabled gate stays a true nil.
	var maintGate cache.Gate
	var flGate flserve.Gate
	if gov.Maintenance != nil {
		maintGate, flGate = gov.Maintenance, gov.Maintenance
	}

	var collector *flserve.Collector
	var flHooks *flserve.LateHooks
	if *flOn {
		collector = flserve.NewCollector(flserve.CollectorConfig{Seed: *seed})
		flHooks = &flserve.LateHooks{}
	}

	tierFlatMax, tierIVFMax := *tierFlat, *tierIVF
	if *tierAuto {
		calNs := index.Calibrate()
		if fm, im := index.TierThresholds(calNs, enc.Dim()); fm > 0 {
			tierFlatMax, tierIVFMax = fm, im
			log.Printf("tier auto-calibration: %.0f ns per 4096×64 sweep → tier-flat-max=%d tier-ivf-max=%d (dim %d)",
				calNs, fm, im, enc.Dim())
		} else {
			log.Printf("tier auto-calibration produced no usable measurement; keeping -tier-flat-max=%d -tier-ivf-max=%d",
				tierFlatMax, tierIVFMax)
		}
	}

	idxFactory, err := indexFactory(*indexKind, indexParams{
		hnsw: index.HNSWConfig{
			M: *hnswM, EfConstruction: *hnswEfCons, EfSearch: *hnswEf,
			Seed: *seed, Quantized: *hnswInt8,
		},
		ivf:     index.IVFConfig{NList: *ivfNList, NProbe: *ivfNProbe, Seed: *seed},
		flatMax: tierFlatMax,
		ivfMax:  tierIVFMax,
	})
	if err != nil {
		log.Fatal(err)
	}

	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards:     *shards,
		MaxTenants: *maxTenants,
		PersistDir: *persistDir,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder:          enc,
				LLM:              llm,
				Tau:              float32(*tau),
				CtxTau:           float32(*ctxTau),
				TopK:             *topK,
				Capacity:         *capacity,
				FeedbackStep:     float32(*step),
				IndexFactory:     idxFactory,
				DegradedTauDelta: float32(*tauDegraded),
				MaintenanceGate:  maintGate,
				Searcher:         searcher,
			})
		},
		Hooks: tenantHooks(flHooks),
	})
	if err != nil {
		log.Fatal(err)
	}

	var flsvc *flserve.Service
	if *flOn {
		var flStore *store.Store
		if *flDir != "" {
			flStore, err = store.Open(filepath.Join(*flDir, "flserve.store"))
			if err != nil {
				log.Fatalf("opening FL store: %v", err)
			}
			defer flStore.Close()
		}
		trainCfg := train.DefaultConfig()
		trainCfg.Epochs = *flEpochs
		flsvc, err = flserve.New(flserve.Config{
			Registry:   reg,
			Collector:  collector,
			Encoder:    swap,
			Arch:       flArch,
			Store:      flStore,
			Train:      trainCfg,
			Beta:       *flBeta,
			Cohort:     *flCohort,
			MinPairs:   *flMinPairs,
			Secure:     *flSecure,
			InitialTau: *tau,
			Seed:       *seed,
			Interval:   *flInterval,
			PCADim:     *flPCA,
			Gate:       flGate,
		})
		if err != nil {
			log.Fatal(err)
		}
		flHooks.Bind(flsvc)
	}

	// Observability: one shared metrics registry for every layer of this
	// process, and a tracer named after the cluster identity so stitched
	// spans attribute to the right node.
	var obsReg *obs.Registry
	if *metricsOn {
		obsReg = obs.NewRegistry()
	}
	traceNode := "local"
	if *clusterOn {
		traceNode = *addr
	}
	tracer := obs.NewTracer(obs.TracerConfig{
		Node:          traceNode,
		SampleRate:    *traceSample,
		SlowThreshold: *traceSlow,
	})

	srv, err := server.New(server.Config{
		Registry:      reg,
		Batcher:       batcher,
		SearchBatcher: searchBatcher,
		StatsTenants:  *statsTenants,
		Observer:      observer(collector),
		Metrics:       obsReg,
		Tracer:        tracer,
		Governor:      gov,
	})
	if err != nil {
		log.Fatal(err)
	}

	var node *cluster.Node
	if *clusterOn {
		if *persistDir == "" {
			log.Fatal("-cluster requires -persist-dir (on storage all nodes share: tenant handoff travels through it)")
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		node, err = cluster.New(cluster.Config{
			Self:      *addr,
			Peers:     peerList,
			VNodes:    *vnodes,
			Registry:  reg,
			Heartbeat: *clusterHeartbeat,
			DeadAfter: *clusterDeadAfter,
			Logf:      log.Printf,
			Tracer:    tracer,
			// Peer forwards share the upstream breaker's tuning, and
			// hedged duplicates are suppressed while the local limiter is
			// saturated — an overloaded node must not multiply its load.
			HedgeVeto: gov.Saturated,
			PeerBreaker: resilience.BreakerConfig{
				Window: *breakerWindow, FailureRatio: *breakerThreshold,
				OpenFor: *breakerCooloff, HalfOpenProbes: *breakerProbes,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		node.Register(srv)
		srv.Wrap(node.Wrap)
		if obsReg != nil {
			node.RegisterMetrics(obsReg)
		}
	}
	if flsvc != nil {
		if obsReg != nil {
			flsvc.RegisterMetrics(obsReg)
		}
		flsvc.Register(srv)
		flsvc.Start()
		log.Printf("online FL coordinator enabled (cohort=%d, min-pairs=%d, interval=%v, secure=%v)",
			*flCohort, *flMinPairs, *flInterval, *flSecure)
	}
	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	if node != nil {
		node.Start()
		log.Printf("cluster mode: self=%s, peers=%v, vnodes=%d, heartbeat=%v",
			*addr, *peers, *vnodes, *clusterHeartbeat)
	}
	if obsReg != nil || tracer != nil {
		log.Printf("observability: metrics=%v, trace-sample=%g, trace-slow=%v",
			*metricsOn, *traceSample, *traceSlow)
	}
	if gov.Quotas != nil || gov.Limiter != nil || gov.Breaker != nil || gov.Maintenance != nil {
		log.Printf("resilience: quota-rate=%g limit-max=%d breaker-window=%d upstream-timeout=%v tau-degraded=%g maintenance-weight=%d",
			*quotaRate, *limitMax, *breakerWindow, *upstreamTimeout, *tauDegraded, *maintWeight)
	}
	log.Printf("cacheserve listening on %s (encoder=%s, shards=%d, upstream=%s)",
		srv.Addr(), enc.Name(), *shards, orInProcess(*upstream))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	agg := srv.Collector().Aggregate()
	log.Printf("shutting down: %d queries, %d hits (%.1f%% hit ratio), %d resident tenants",
		agg.Queries, agg.Hits, 100*agg.HitRatio, reg.Resident())
	srv.Close()
	if node != nil {
		node.Close()
	}
	if flsvc != nil {
		if rec, ok := flsvc.Models().Latest(); ok {
			log.Printf("online FL: model version %s (tau=%.3f) after rollouts %+v",
				rec.Version, rec.Tau, flsvc.RolloutSnapshot())
		}
		if err := flsvc.Close(); err != nil {
			log.Printf("closing FL coordinator: %v", err)
		}
	}
	if *persistDir != "" {
		if err := reg.Flush(); err != nil {
			log.Printf("flushing resident tenants: %v", err)
		} else {
			log.Printf("flushed %d resident tenants to %s", reg.Resident(), *persistDir)
		}
	}
}

func orInProcess(upstream string) string {
	if upstream == "" {
		return "in-process"
	}
	return upstream
}

// indexParams carries the per-tier knobs from flags to the factory.
type indexParams struct {
	hnsw    index.HNSWConfig
	ivf     index.IVFConfig
	flatMax int
	ivfMax  int
}

// indexFactory maps the -index flag to a per-tenant index constructor
// (nil = the cache's default slab-backed exact scan, index.Flat).
func indexFactory(kind string, p indexParams) (func(dim int) index.Index, error) {
	switch kind {
	case "scan", "":
		return nil, nil
	case "flat":
		return func(dim int) index.Index { return index.NewFlat(dim) }, nil
	case "ivf":
		return func(dim int) index.Index { return index.NewIVF(dim, p.ivf) }, nil
	case "hnsw":
		return func(dim int) index.Index { return index.NewHNSW(dim, p.hnsw) }, nil
	case "adaptive":
		return func(dim int) index.Index {
			return index.NewAdaptive(dim, index.AdaptiveConfig{
				FlatMax: p.flatMax, IVFMax: p.ivfMax, IVF: p.ivf, HNSW: p.hnsw,
			})
		}, nil
	default:
		return nil, fmt.Errorf("unknown -index %q (want scan, flat, ivf, hnsw or adaptive)", kind)
	}
}

// tenantHooks/observer avoid typed-nil interfaces when FL is off.
func tenantHooks(h *flserve.LateHooks) server.TenantHooks {
	if h == nil {
		return nil
	}
	return h
}

func observer(c *flserve.Collector) server.Observer {
	if c == nil {
		return nil
	}
	return c
}
