// Command cacheserve runs the multi-tenant semantic-cache serving layer:
// one HTTP process hosting a MeanCache client per user (internal/server),
// fronting an upstream LLM service. Misses are proxied upstream; hits are
// answered from the requesting user's local semantic cache.
//
// The upstream is either a network llmsim service (started with
// cmd/llmserve, the Figure 1 topology) or, with -upstream "", an
// in-process simulator in virtual-time mode — convenient for load tests
// that should not spend wall-clock time sleeping.
//
// Usage:
//
//	cacheserve -addr 127.0.0.1:8090 -upstream 127.0.0.1:8080
//	curl -X POST localhost:8090/v1/query -d '{"user":"u1","query":"what is FL?"}'
//	curl localhost:8090/v1/stats
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "listen address")
		upstream = flag.String("upstream", "", "llmsim service address (host:port); empty runs an in-process simulator")
		sleep    = flag.Bool("sleep", false, "in-process upstream only: simulate inference latency with real sleeps")
		model    = flag.String("model", "", "path to a trained encoder saved by cmd/fltrain (overrides -arch)")
		arch     = flag.String("arch", "mpnet-sim", "encoder architecture when no -model is given")
		seed     = flag.Int64("seed", 1, "weight init seed for an untrained encoder")

		tau      = flag.Float64("tau", 0.83, "similarity threshold τ")
		ctxTau   = flag.Float64("ctx-tau", 0, "context-turn threshold (0 = same as -tau)")
		topK     = flag.Int("topk", 5, "candidates context-checked per query")
		capacity = flag.Int("tenant-capacity", 4096, "cache entries per tenant (0 = unbounded)")
		step     = flag.Float64("feedback-step", 0.01, "τ increase per false-hit report (0 disables)")

		shards     = flag.Int("shards", 16, "tenant registry shards")
		maxTenants = flag.Int("max-tenants", 0, "resident tenant bound (0 = unbounded)")
		persistDir = flag.String("persist-dir", "", "directory for evicted tenants' caches (empty = drop on eviction)")

		batch     = flag.Int("batch", 32, "embedding micro-batch size cap")
		batchWait = flag.Duration("batch-wait", 200*time.Microsecond, "micro-batch gather window")
		noBatch   = flag.Bool("no-batch", false, "disable the embedding micro-batcher")

		statsTenants = flag.Int("stats-tenants", 20, "per-tenant rows in /v1/stats (-1 = all)")
	)
	flag.Parse()

	var enc embed.Encoder
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			log.Fatalf("opening model: %v", err)
		}
		m, err := embed.Load(f)
		f.Close()
		if err != nil {
			log.Fatalf("loading model: %v", err)
		}
		enc = m
	} else {
		a, err := embed.ArchByName(*arch)
		if err != nil {
			log.Fatal(err)
		}
		enc = embed.NewModel(a, *seed)
		log.Printf("warning: serving with an untrained %s encoder; pass -model for a trained one", *arch)
	}

	var batcher *server.Batcher
	if !*noBatch {
		batcher = server.NewBatcher(enc, server.BatcherConfig{MaxBatch: *batch, MaxWait: *batchWait})
		defer batcher.Close()
		enc = batcher
	}

	var llm core.LLM
	if *upstream != "" {
		llm = llmsim.NewClient(*upstream)
	} else {
		cfg := llmsim.DefaultConfig()
		cfg.Sleep = *sleep
		llm = llmsim.New(cfg)
		log.Printf("using in-process simulated LLM upstream (sleep=%v)", *sleep)
	}

	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards:     *shards,
		MaxTenants: *maxTenants,
		PersistDir: *persistDir,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder:      enc,
				LLM:          llm,
				Tau:          float32(*tau),
				CtxTau:       float32(*ctxTau),
				TopK:         *topK,
				Capacity:     *capacity,
				FeedbackStep: float32(*step),
			})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{Registry: reg, Batcher: batcher, StatsTenants: *statsTenants})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Serve(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("cacheserve listening on %s (encoder=%s, shards=%d, upstream=%s)",
		srv.Addr(), enc.Name(), *shards, orInProcess(*upstream))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	agg := srv.Collector().Aggregate()
	log.Printf("shutting down: %d queries, %d hits (%.1f%% hit ratio), %d resident tenants",
		agg.Queries, agg.Hits, 100*agg.HitRatio, reg.Resident())
	srv.Close()
	if *persistDir != "" {
		if err := reg.Flush(); err != nil {
			log.Printf("flushing resident tenants: %v", err)
		} else {
			log.Printf("flushed %d resident tenants to %s", reg.Resident(), *persistDir)
		}
	}
}

func orInProcess(upstream string) string {
	if upstream == "" {
		return "in-process"
	}
	return upstream
}
