package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchfix"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/server"
)

// The -bench-json mode measures the serving hot paths (not the paper
// replays: those live in the root bench_test.go) and writes the results
// as JSON, so CI and successive PRs can track a machine-readable
// performance trajectory.

// benchResult is one serialised benchmark row.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the file layout of BENCH_serving.json.
type benchReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Results     []benchResult `json:"results"`
}

type servingBench struct {
	name string
	fn   func(b *testing.B)
}

func runBenchJSON(outPath string) error {
	benches := servingBenches()
	report := benchReport{
		GeneratedAt: time.Now().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
	}
	for _, sb := range benches {
		fmt.Fprintf(os.Stderr, "[bench] %s...\n", sb.name)
		r := testing.Benchmark(sb.fn)
		report.Results = append(report.Results, benchResult{
			Name:        sb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "[bench] %s: %.0f ns/op (%d iters)\n",
			sb.name, report.Results[len(report.Results)-1].NsPerOp, r.N)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(outPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[bench] wrote %d results to %s\n", len(report.Results), outPath)
	return nil
}

func servingBenches() []servingBench {
	return []servingBench{
		{"EncodeMPNetSim", benchEncode},
		{"EncodeBatch32MPNetSim", benchEncodeBatch},
		{"CacheFindSimilar768x1000", benchFindSimilar},
		{"CacheReembed768x500", benchReembed},
		{"ServerQueryHit", benchServerQueryHit},
		{"IndexScan64x20k", benchIndexTier("scan")},
		{"IndexHNSW64x20k", benchIndexTier("hnsw")},
		{"IndexHNSWInt8_64x20k", benchIndexTier("hnsw-int8")},
	}
}

// benchIndexTier measures the large-tenant similarity-search path through
// the cache on the shared benchfix operating point (20k entries × 64
// dims), identical to bench_test.go's BenchmarkLargeCacheSearch.
func benchIndexTier(tier string) func(b *testing.B) {
	return func(b *testing.B) {
		c, probe, err := benchfix.LargeTenantCache(tier)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.FindSimilar(probe, 5, 0.8)
		}
	}
}

func benchEncode(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Encode("how do i rotate the api credentials for the billing service")
	}
}

func benchEncodeBatch(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	texts := make([]string, 32)
	for i := range texts {
		texts[i] = fmt.Sprintf("query %d about rotating api credentials", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeBatch(texts)
	}
}

func benchFindSimilar(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	c := cache.New(m.Dim(), 0, cache.LRU{})
	for i := 0; i < 1000; i++ {
		q := fmt.Sprintf("cached question number %d", i)
		if _, err := c.Put(q, "r", m.Encode(q), cache.NoParent); err != nil {
			b.Fatal(err)
		}
	}
	probe := m.Encode("cached question number 500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindSimilar(probe, 5, 0.8)
	}
}

func benchReembed(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	c := cache.New(m.Dim(), 0, cache.LRU{})
	for i := 0; i < 500; i++ {
		q := fmt.Sprintf("cached question number %d", i)
		if _, err := c.Put(q, "r", m.Encode(q), cache.NoParent); err != nil {
			b.Fatal(err)
		}
	}
	m2 := embed.NewModel(embed.MPNetSim, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reembed(m2.Encode); err != nil {
			b.Fatal(err)
		}
	}
}

type instantLLM struct{}

func (instantLLM) Query(q string) (string, time.Duration) { return "r", 0 }

func benchServerQueryHit(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	reg, err := server.NewRegistry(server.RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: instantLLM{}, Tau: 0.8, TopK: 5})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(server.QueryRequest{User: "u", Query: "warm question"})
	// Warm the cache so the measured path is a hit.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
