package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchfix"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/vecmath"
)

// The -bench-json mode measures the serving hot paths (not the paper
// replays: those live in the root bench_test.go) and writes the results
// as JSON, so CI and successive PRs can track a machine-readable
// performance trajectory.

// benchResult is one serialised benchmark row.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the file layout of BENCH_serving.json.
type benchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	// CalibrationNs is the ns/op of a fixed workload private to this
	// tool (see calibrate), recorded so bench-diff can normalise away
	// machine-speed differences — CI runners and shared VMs vary well
	// beyond any useful regression bar.
	CalibrationNs float64       `json:"calibration_ns,omitempty"`
	Results       []benchResult `json:"results"`
}

// calibrate measures the reference workload: a scalar dot-product sweep
// over a fixed in-tool array — deliberately NOT a call into the library
// under test, so a kernel regression can never hide by slowing the
// yardstick with it.
func calibrate() float64 {
	const rows, dim = 4096, 64
	data := make([]float32, rows*dim)
	x := float32(1)
	for i := range data {
		x = x*1.0001 + 0.001 // deterministic, denormal-free fill
		data[i] = x
	}
	probe := data[:dim]
	out := make([]float32, rows)
	r := testing.Benchmark(func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			for row := 0; row < rows; row++ {
				var s0, s1, s2, s3 float32
				v := data[row*dim : (row+1)*dim]
				for j := 0; j+4 <= dim; j += 4 {
					s0 += probe[j] * v[j]
					s1 += probe[j+1] * v[j+1]
					s2 += probe[j+2] * v[j+2]
					s3 += probe[j+3] * v[j+3]
				}
				out[row] = s0 + s1 + s2 + s3
			}
		}
	})
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

type servingBench struct {
	name string
	fn   func(b *testing.B)
}

func runBenchJSON(outPath string) error {
	benches := servingBenches()
	report := benchReport{
		GeneratedAt:   time.Now().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		CalibrationNs: calibrate(),
	}
	fmt.Fprintf(os.Stderr, "[bench] calibration %.0f ns/op\n", report.CalibrationNs)
	for _, sb := range benches {
		fmt.Fprintf(os.Stderr, "[bench] %s...\n", sb.name)
		r := testing.Benchmark(sb.fn)
		report.Results = append(report.Results, benchResult{
			Name:        sb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "[bench] %s: %.0f ns/op (%d iters)\n",
			sb.name, report.Results[len(report.Results)-1].NsPerOp, r.N)
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(outPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[bench] wrote %d results to %s\n", len(report.Results), outPath)
	return nil
}

func servingBenches() []servingBench {
	return []servingBench{
		{"EncodeMPNetSim", benchEncode},
		{"EncodeBatch32MPNetSim", benchEncodeBatch},
		{"CacheFindSimilar768x1000", benchFindSimilar},
		{"CacheReembed768x500", benchReembed},
		{"ServerQueryHit", benchServerQueryHit},
		{"ServerQueryHitBatched", benchServerQueryHitBatched},
		{"ServerQueryHitDirect", benchServerQueryHitDirect},
		{"ServerQueryHitTraced", benchServerQueryHitTraced},
		{"IndexScan64x20k", benchIndexTier("scan")},
		{"IndexIVF64x20k", benchIndexTier("ivf")},
		{"IndexHNSW64x20k", benchIndexTier("hnsw")},
		{"IndexHNSWInt8_64x20k", benchIndexTier("hnsw-int8")},
		{"ScanDotKernel64x20k", benchScanDotKernel},
		{"ScanDotMulti8x64x20k", benchScanDotMulti},
	}
}

// benchIndexTier measures the large-tenant similarity-search path through
// the cache on the shared benchfix operating point (20k entries × 64
// dims), identical to bench_test.go's BenchmarkLargeCacheSearch.
func benchIndexTier(tier string) func(b *testing.B) {
	return func(b *testing.B) {
		c, probe, err := benchfix.LargeTenantCache(tier)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.FindSimilar(probe, 5, 0.8)
		}
	}
}

func benchEncode(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Encode("how do i rotate the api credentials for the billing service")
	}
}

func benchEncodeBatch(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	texts := make([]string, 32)
	for i := range texts {
		texts[i] = fmt.Sprintf("query %d about rotating api credentials", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EncodeBatch(texts)
	}
}

func benchFindSimilar(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	c := cache.New(m.Dim(), 0, cache.LRU{})
	for i := 0; i < 1000; i++ {
		q := fmt.Sprintf("cached question number %d", i)
		if _, err := c.Put(q, "r", m.Encode(q), cache.NoParent); err != nil {
			b.Fatal(err)
		}
	}
	probe := m.Encode("cached question number 500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FindSimilar(probe, 5, 0.8)
	}
}

func benchReembed(b *testing.B) {
	m := embed.NewModel(embed.MPNetSim, 1)
	c := cache.New(m.Dim(), 0, cache.LRU{})
	for i := 0; i < 500; i++ {
		q := fmt.Sprintf("cached question number %d", i)
		if _, err := c.Put(q, "r", m.Encode(q), cache.NoParent); err != nil {
			b.Fatal(err)
		}
	}
	m2 := embed.NewModel(embed.MPNetSim, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reembed(m2.Encode); err != nil {
			b.Fatal(err)
		}
	}
}

type instantLLM struct{}

func (instantLLM) Query(q string) (string, time.Duration) { return "r", 0 }

// newHitServer assembles the single-tenant hit-path fixture: untrained
// encoder, instant upstream, one warmed cached query. searcher, when
// non-nil, routes tenant lookups through it (the batched row wires the
// search batcher in with it); mod, when non-nil, adjusts the server
// config before construction (the traced row turns observability on with
// it).
func newHitServer(b *testing.B, searcher cache.Searcher, mod func(*server.Config)) (*server.Server, *httptest.Server, []byte) {
	m := embed.NewModel(embed.MPNetSim, 1)
	reg, err := server.NewRegistry(server.RegistryConfig{
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: m, LLM: instantLLM{}, Tau: 0.8, TopK: 5, Searcher: searcher})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := server.Config{Registry: reg}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	body, _ := json.Marshal(server.QueryRequest{User: "u", Query: "warm question"})
	// Warm the cache so the measured path is a hit.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	return srv, ts, body
}

// benchServerQueryHit measures the full server request lifecycle over a
// socket: one persistent connection, a precomputed request, responses
// drained through a fixed buffer. The hand-rolled keep-alive client
// keeps net/http *client* allocation noise (request construction, header
// cloning, response parsing — ~50 allocs/op) out of a row whose subject
// is the server; the remaining per-op allocations are the server's
// accept-to-respond path.
func benchServerQueryHit(b *testing.B) {
	_, ts, body := newHitServer(b, nil, nil)
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	req := []byte(fmt.Sprintf("POST /v1/query HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body))
	br := bufio.NewReader(conn)
	readResp := func() {
		cl := -1
		for {
			line, err := br.ReadSlice('\n')
			if err != nil {
				b.Fatal(err)
			}
			if len(line) <= 2 {
				break
			}
			if bytes.HasPrefix(line, []byte("Content-Length: ")) {
				cl = 0
				for _, c := range line[16 : len(line)-2] {
					cl = cl*10 + int(c-'0')
				}
			}
		}
		if cl < 0 {
			b.Fatal("response without Content-Length")
		}
		if _, err := br.Discard(cl); err != nil {
			b.Fatal(err)
		}
	}
	conn.Write(req)
	readResp()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(req); err != nil {
			b.Fatal(err)
		}
		readResp()
	}
}

// benchServerQueryHitBatched is the handler hit path with the per-tenant
// search batcher wired in, driven in parallel so concurrent requests
// against the one tenant genuinely coalesce into multi-probe index
// passes (drain mode: no gather wait). Pinned in benchdiff so the
// batched route's latency and allocation count stay budgeted alongside
// the direct route's.
func benchServerQueryHitBatched(b *testing.B) {
	sb := server.NewSearchBatcher(server.BatcherConfig{})
	b.Cleanup(sb.Close)
	srv, _, body := newHitServer(b, sb, func(cfg *server.Config) {
		cfg.SearchBatcher = sb
	})
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rdr := bytes.NewReader(body)
		req := httptest.NewRequest("POST", "/v1/query", rdr)
		req.Header.Set("Content-Type", "application/json")
		rc := readerNopCloser{rdr}
		w := &discardResponseWriter{h: make(http.Header)}
		for pb.Next() {
			rdr.Seek(0, 0)
			req.Body = rc
			h.ServeHTTP(w, req)
		}
	})
}

// benchServerQueryHitDirect measures the uninstrumented handler (see
// benchHandlerHit).
func benchServerQueryHitDirect(b *testing.B) {
	srv, _, body := newHitServer(b, nil, nil)
	benchHandlerHit(b, srv, body)
}

// benchServerQueryHitTraced is the direct hit path with observability
// fully on — metrics registered and every request traced (sample rate
// 1, the worst case: each query records spans and publishes into the
// ring). Pinned in benchdiff so instrumentation overhead stays bounded.
func benchServerQueryHitTraced(b *testing.B) {
	srv, _, body := newHitServer(b, nil, func(cfg *server.Config) {
		cfg.Metrics = obs.NewRegistry()
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{Node: "bench", SampleRate: 1})
	})
	benchHandlerHit(b, srv, body)
}

// benchHandlerHit drives the handler in isolation — no sockets, no
// net/http connection machinery: decode, tenant lookup, encode, pruned
// search, respond. This is the pooled request lifecycle itself; after
// warmup it runs in single-digit allocations.
func benchHandlerHit(b *testing.B, srv *server.Server, body []byte) {
	h := srv.Handler()
	rdr := bytes.NewReader(body)
	req := httptest.NewRequest("POST", "/v1/query", rdr)
	req.Header.Set("Content-Type", "application/json")
	rc := readerNopCloser{rdr}
	w := &discardResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Seek(0, 0)
		req.Body = rc
		h.ServeHTTP(w, req)
	}
}

type readerNopCloser struct{ *bytes.Reader }

func (readerNopCloser) Close() error { return nil }

// discardResponseWriter satisfies http.ResponseWriter without buffering,
// so the direct benchmark measures the handler, not a recorder.
type discardResponseWriter struct {
	h    http.Header
	code int
}

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(code int)        { d.code = code }

// benchScanDotKernel measures the raw blocked scan kernel at the
// large-tenant operating point: one probe against 20k contiguous rows.
func benchScanDotKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	probe := randRow(rng, benchfix.LargeTenantDim)
	rows := make([]float32, benchfix.LargeTenantN*benchfix.LargeTenantDim)
	for i := range rows {
		rows[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, benchfix.LargeTenantN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecmath.ScanDot(probe, rows, out)
	}
}

// benchScanDotMulti measures the multi-probe kernel: an 8-probe
// micro-batch scored in one pass over the same 20k rows.
func benchScanDotMulti(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	probes := make([]float32, 8*benchfix.LargeTenantDim)
	for i := range probes {
		probes[i] = float32(rng.NormFloat64())
	}
	rows := make([]float32, benchfix.LargeTenantN*benchfix.LargeTenantDim)
	for i := range rows {
		rows[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, 8*benchfix.LargeTenantN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vecmath.ScanDotMulti(probes, rows, out, 8)
	}
}

func randRow(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}
