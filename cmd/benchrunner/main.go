// Command benchrunner regenerates the paper's evaluation: every table and
// figure of §IV, printed in the layout the paper reports.
//
// Usage:
//
//	benchrunner                     # run everything at paper scale
//	benchrunner -exp table1,fig10   # selected experiments
//	benchrunner -quick              # scaled-down configuration (CI)
//	benchrunner -o results.txt      # also write results to a file
//
// Expensive shared artifacts (the synthetic corpus and the FL-trained
// models) are built once and reused across the selected experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'; known: "+strings.Join(experiments.Names(), ","))
		quick     = flag.Bool("quick", false, "use the scaled-down test configuration")
		seed      = flag.Int64("seed", 1, "master random seed")
		outPath   = flag.String("o", "", "also write results to this file")
		quiet     = flag.Bool("q", false, "suppress progress logging")
		benchJSON = flag.String("bench-json", "", "skip the experiments; run the serving micro-benchmarks and write JSON here")
		benchDiff = flag.String("bench-diff", "", "skip the experiments; re-run the pinned hot-path benchmarks and fail on regression against this committed JSON baseline")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchDiff != "" {
		if err := runBenchDiff(*benchDiff); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.Corpus.Seed = *seed

	var names []string
	if *expFlag == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*expFlag, ",")
	}
	runners := make([]experiments.Runner, len(names))
	for i, name := range names {
		r, err := experiments.Lookup(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		runners[i] = r
	}

	lab := experiments.NewLab(cfg)
	if !*quiet {
		lab.SetLogf(func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[lab] "+format+"\n", args...)
		})
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatalf("creating %s: %v", *outPath, err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(out, "MeanCache reproduction — experiment results\n")
	fmt.Fprintf(out, "config: quick=%v seed=%d clients=%d rounds=%d cached=%d probes=%d\n",
		*quick, *seed, cfg.FLClients, cfg.FLRounds, cfg.NCached, cfg.NProbes)
	fmt.Fprintf(out, "generated: %s\n", time.Now().Format(time.RFC3339))

	for i, name := range names {
		start := time.Now()
		result := runners[i](lab)
		fmt.Fprintf(out, "\n%s\n", strings.Repeat("=", 72))
		fmt.Fprintf(out, "[%s] (%.1fs)\n\n", strings.TrimSpace(name), time.Since(start).Seconds())
		fmt.Fprintln(out, result.String())
	}
}
