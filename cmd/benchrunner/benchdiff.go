package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// The -bench-diff mode is the performance-regression gate: it re-runs a
// pinned subset of the serving hot-path benchmarks and compares them
// against the committed BENCH_serving.json. A run fails when ns/op
// regresses by more than maxNsRegression on any pinned row, or when
// allocs/op regresses at all — allocation counts are deterministic after
// warmup, so any increase is a real lifecycle regression, not noise.

// maxNsRegression is the tolerated ns/op ratio (current / committed).
const maxNsRegression = 1.25

// diffSubset pins the hot-path rows the gate watches. Deliberately a
// subset of servingBenches: rows dominated by wall-clock-noisy work
// (HTTP round trips at microsecond scale, background-trained fixtures)
// would flake at a 25% bar; these are stable to a few percent on an
// idle machine and cover the serving pipeline end to end — encode,
// user-size search, large-tenant pruned scan, the full HTTP hit path's
// allocation budget, and the fully-traced direct hit path (so
// instrumentation overhead is gated like any other regression).
var diffSubset = []string{
	"EncodeMPNetSim",
	"CacheFindSimilar768x1000",
	"IndexScan64x20k",
	"ServerQueryHit",
	"ServerQueryHitBatched",
	"ServerQueryHitTraced",
}

func runBenchDiff(baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var baseline benchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	// The calibration row is what makes cross-machine comparison sound;
	// without it every ratio below would silently gate on hardware
	// instead of code. Hard-fail up front rather than degrade: every
	// division by CalibrationNs downstream is then safe by construction.
	if baseline.CalibrationNs <= 0 {
		return fmt.Errorf("benchdiff: baseline %s has no calibration_ns row — regenerate it with `make bench-json` and commit the result", baselinePath)
	}
	committed := make(map[string]benchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		committed[r.Name] = r
	}

	// Normalise for machine speed: the committed numbers came from some
	// other (or differently loaded) machine, so raw ns comparisons would
	// gate on hardware, not code. The calibration workload is private to
	// this tool and identical across versions; its ratio rescales the
	// committed expectations to the current machine. speedFactor is
	// re-measured per attempt because shared runners throttle over time.
	speedFactor := func() float64 {
		cur := calibrate()
		speed := cur / baseline.CalibrationNs
		fmt.Fprintf(os.Stderr, "[benchdiff] calibration: %.0f ns now vs %.0f committed — machine speed factor %.2f\n",
			cur, baseline.CalibrationNs, speed)
		return speed
	}

	byName := make(map[string]servingBench, len(servingBenches()))
	for _, sb := range servingBenches() {
		byName[sb.name] = sb
	}

	failures := 0
	for _, name := range diffSubset {
		base, ok := committed[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "[benchdiff] %s: no committed baseline row — run `make bench-json` and commit it\n", name)
			failures++
			continue
		}
		sb, ok := byName[name]
		if !ok {
			return fmt.Errorf("benchdiff: pinned row %q is not a known benchmark", name)
		}
		// Up to three attempts, each with a fresh calibration: shared or
		// virtualised runners swing well past the regression bar between
		// throttling windows, and a transient window must not fail the
		// gate. A real regression fails every attempt.
		const attempts = 3
		var ns, ratio float64
		var allocs int64
		for attempt := 0; attempt < attempts; attempt++ {
			fmt.Fprintf(os.Stderr, "[benchdiff] %s (attempt %d)...\n", name, attempt+1)
			speed := speedFactor()
			r := testing.Benchmark(sb.fn)
			ns = float64(r.T.Nanoseconds()) / float64(r.N)
			a := ns / (base.NsPerOp * speed)
			if attempt == 0 || a < ratio {
				ratio = a
			}
			// Keep the best allocation reading too: a GC draining the
			// sync.Pools mid-run inflates one attempt's count, and that
			// noise deserves the same retry the timing gets.
			if attempt == 0 || r.AllocsPerOp() < allocs {
				allocs = r.AllocsPerOp()
			}
			if ratio <= maxNsRegression && allocs <= base.AllocsPerOp {
				break
			}
		}
		var problems []string
		if ratio > maxNsRegression {
			problems = append(problems, fmt.Sprintf("ns/op regressed %.0f%% (limit %.0f%%)", 100*(ratio-1), 100*(maxNsRegression-1)))
		}
		if allocs > base.AllocsPerOp {
			problems = append(problems, fmt.Sprintf("allocs/op %d > committed %d", allocs, base.AllocsPerOp))
		}
		verdict := "ok"
		if len(problems) > 0 {
			verdict = "FAIL " + strings.Join(problems, "; ")
			failures++
		}
		fmt.Fprintf(os.Stderr, "[benchdiff] %s: %.0f ns/op vs %.0f committed (best %.2fx calibrated), %d vs %d allocs/op — %s\n",
			name, ns, base.NsPerOp, ratio, allocs, base.AllocsPerOp, verdict)
	}
	if failures > 0 {
		return fmt.Errorf("benchdiff: %d regression(s) against %s", failures, baselinePath)
	}
	fmt.Fprintf(os.Stderr, "[benchdiff] all %d pinned rows within budget\n", len(diffSubset))
	return nil
}
