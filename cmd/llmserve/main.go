// Command llmserve runs the simulated LLM web service as a standalone
// HTTP server, so cmd/meancache (and any other client) can front a
// network-remote service — the deployment topology of Figure 1, where the
// cache sits on the user's device and the LLM service is across the
// network.
//
// Usage:
//
//	llmserve -addr 127.0.0.1:8080 -sleep
//	curl -X POST localhost:8080/v1/query -d '{"query":"what is FL?"}'
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/llmsim"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		sleep    = flag.Bool("sleep", true, "simulate inference latency with real sleeps")
		base     = flag.Duration("base", 120*time.Millisecond, "base latency per query")
		perToken = flag.Duration("per-token", 14*time.Millisecond, "latency per generated token")
		tokens   = flag.Int("max-tokens", 50, "response length cap")
		seed     = flag.Int64("seed", 1, "response generation seed")
	)
	flag.Parse()

	svc := llmsim.New(llmsim.Config{
		BaseLatency: *base,
		PerToken:    *perToken,
		JitterFrac:  0.15,
		MaxTokens:   *tokens,
		Sleep:       *sleep,
		Seed:        *seed,
	})
	srv, err := llmsim.Serve(svc, *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("simulated LLM service listening on %s (sleep=%v)", srv.Addr(), *sleep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down after %d queries", svc.Queries())
	srv.Close()
}
