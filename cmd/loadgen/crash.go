package main

// The crash scenario is the crash-loop e2e gate behind `make crashtest`:
// a real cacheserve process is started, driven with live traffic, and
// SIGKILLed mid-flight, over and over, against one persist dir. After
// every restart the generator verifies that no tenant whose state was
// durably persisted (by a clean shutdown's registry flush) has lost its
// canonical entry, and that the server came up without tripping over
// whatever the kill tore. One cycle additionally corrupts a persisted
// snapshot on disk while the server is down and requires the restarted
// server to quarantine it and serve that tenant cold — never to crash
// or error on it.
//
// Cycle schedule: cycle 0 and every 6th cycle shut down cleanly (SIGINT,
// which flushes every resident tenant — those users join the "synced"
// set the next verification asserts on); every other cycle is killed
// with SIGKILL while traffic is in flight. The default 26 cycles give
// 21 SIGKILLs, clearing the ≥20 acceptance floor.
//
// Gate (-crash-accept): every restart healthy, every synced tenant's
// canonical probe hits, zero unexpected request failures outside kill
// windows, and exactly one quarantine — in the injected-corruption
// cycle, nowhere else.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// tenantSnapshotPath mirrors the registry's persistPath layout: the user
// ID hex-encoded, ".cache" suffix, in the persist dir.
func tenantSnapshotPath(dir, userID string) string {
	return filepath.Join(dir, hex.EncodeToString([]byte(userID))+".cache")
}

type crashConfig struct {
	bin         string // cacheserve binary
	dir         string // persist dir shared across incarnations
	addr        string
	cycles      int
	users       int
	maxTenants  int
	concurrency int
	seed        int64
	timeout     time.Duration
	accept      bool
}

// corruptAtCycle is the cycle before which a synced tenant's snapshot is
// bit-mangled on disk (while the server is down).
const corruptAtCycle = 14

func crashUser(u int) string { return fmt.Sprintf("crash-user-%03d", u) }
func crashCanonical(u int) string {
	return fmt.Sprintf("what is the canonical answer for user %03d", u)
}

type crashGate struct {
	startFailures   int
	lostSynced      int
	unexpectedErrs  int
	quarantineFails int
	sigkills        int
	cleanShutdowns  int
}

func (g crashGate) failed() bool {
	return g.startFailures > 0 || g.lostSynced > 0 || g.unexpectedErrs > 0 || g.quarantineFails > 0
}

func runCrash(cfg crashConfig) {
	if cfg.cycles < 2 {
		log.Fatal("crash: need at least 2 cycles")
	}
	client := &http.Client{Timeout: cfg.timeout}
	base := "http://" + cfg.addr
	rng := rand.New(rand.NewSource(cfg.seed))

	synced := map[int]bool{} // users whose canonical entry is durably persisted
	victim := -1             // user whose snapshot was corrupted (this cycle only)
	var gate crashGate

	for cycle := 0; cycle < cfg.cycles; cycle++ {
		clean := cycle%6 == 0
		if cycle == corruptAtCycle {
			victim = corruptSnapshot(cfg, rng, synced)
		}

		proc, err := startServer(cfg)
		if err != nil {
			log.Fatalf("crash: cycle %d: starting %s: %v", cycle, cfg.bin, err)
		}
		if err := waitHealthy(client, base, 15*time.Second); err != nil {
			gate.startFailures++
			log.Printf("crash: cycle %d: FAIL: server not healthy after restart: %v", cycle, err)
			proc.Process.Kill()
			proc.Wait()
			break
		}

		// Verification: every synced tenant must still hold its canonical
		// entry; the corrupted one must be served cold (quarantined, not
		// crashed on).
		for u := range synced {
			hit, err := crashQuery(client, base, crashUser(u), crashCanonical(u))
			switch {
			case err != nil:
				gate.unexpectedErrs++
				log.Printf("crash: cycle %d: verify %s: %v", cycle, crashUser(u), err)
			case !hit:
				gate.lostSynced++
				log.Printf("crash: cycle %d: FAIL: synced tenant %s lost its canonical entry", cycle, crashUser(u))
			}
		}
		if victim >= 0 {
			hit, err := crashQuery(client, base, crashUser(victim), crashCanonical(victim))
			if err != nil {
				gate.unexpectedErrs++
				log.Printf("crash: cycle %d: corrupt-snapshot probe errored: %v", cycle, err)
			} else if hit {
				gate.quarantineFails++
				log.Printf("crash: cycle %d: FAIL: corrupted snapshot served a hit (not quarantined?)", cycle)
			}
		}
		wantQuarantines := int64(0)
		if victim >= 0 {
			wantQuarantines = 1
		}
		if q, err := fetchQuarantines(client, base); err != nil {
			gate.unexpectedErrs++
			log.Printf("crash: cycle %d: stats: %v", cycle, err)
		} else if q != wantQuarantines {
			gate.quarantineFails++
			log.Printf("crash: cycle %d: FAIL: quarantines = %d, want %d", cycle, q, wantQuarantines)
		}
		victim = -1

		// Traffic: every user re-asserts their canonical entry (teaching
		// it on a miss) plus fresh queries forcing eviction churn, so
		// snapshots are constantly being rewritten when the kill lands.
		var jobs []crashJob
		for u := 0; u < cfg.users; u++ {
			jobs = append(jobs, crashJob{user: u, text: crashCanonical(u)})
			for p := 0; p < 3; p++ {
				jobs = append(jobs, crashJob{user: u, text: fmt.Sprintf("novel question %d from user %03d in cycle %d", p, u, cycle)})
			}
		}
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })

		var killFired atomic.Bool
		var done atomic.Int64
		killAt := int64(len(jobs)) * 2 / 5
		var killWG sync.WaitGroup
		if !clean {
			killWG.Add(1)
			go func() {
				defer killWG.Done()
				for done.Load() < killAt {
					time.Sleep(2 * time.Millisecond)
				}
				killFired.Store(true)
				proc.Process.Kill() // SIGKILL: no flush, no goodbye
			}()
		}

		errsBeforeKill := driveCrashJobs(client, base, jobs, cfg.concurrency, &done, &killFired)
		gate.unexpectedErrs += errsBeforeKill

		if clean {
			proc.Process.Signal(os.Interrupt) // graceful: flushes every resident tenant
			if err := waitExit(proc, 20*time.Second); err != nil {
				gate.unexpectedErrs++
				log.Printf("crash: cycle %d: clean shutdown: %v", cycle, err)
			}
			gate.cleanShutdowns++
			// Every user has queried at least once, so every tenant was
			// either evicted (persisting) or flushed at shutdown: all are
			// durably synced now.
			for u := 0; u < cfg.users; u++ {
				synced[u] = true
			}
			log.Printf("crash: cycle %d: clean shutdown, %d tenants synced", cycle, cfg.users)
		} else {
			killWG.Wait()
			proc.Wait()
			gate.sigkills++
			log.Printf("crash: cycle %d: SIGKILL after %d/%d requests (%d tolerated in-flight failures)",
				cycle, done.Load(), len(jobs), len(jobs)-int(done.Load()))
		}
	}

	fmt.Printf("\n=== crashtest report ===\n")
	fmt.Printf("cycles             %d (%d SIGKILL, %d clean)\n", cfg.cycles, gate.sigkills, gate.cleanShutdowns)
	fmt.Printf("synced tenants     %d\n", len(synced))
	fmt.Printf("start failures     %d\n", gate.startFailures)
	fmt.Printf("lost synced        %d\n", gate.lostSynced)
	fmt.Printf("unexpected errors  %d\n", gate.unexpectedErrs)
	fmt.Printf("quarantine checks  %s\n", map[bool]string{true: "FAIL", false: "ok (exactly the injected one)"}[gate.quarantineFails > 0])
	if gate.failed() || gate.sigkills < 20 {
		fmt.Printf("crashtest gate     FAIL\n")
		if cfg.accept {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("crashtest gate     PASS (%d kill/restart cycles, zero corrupt opens, zero lost synced tenants)\n", gate.sigkills)
}

type crashJob struct {
	user int
	text string
}

// driveCrashJobs pushes jobs through a closed-loop pool, returning the
// number of failures that happened OUTSIDE the kill window (failures
// after killFired are the kill's expected collateral).
func driveCrashJobs(client *http.Client, base string, jobs []crashJob, concurrency int, done *atomic.Int64, killFired *atomic.Bool) int {
	var unexpected atomic.Int64
	ch := make(chan crashJob)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				_, err := crashQuery(client, base, crashUser(j.user), j.text)
				if err == nil {
					done.Add(1)
					continue
				}
				if !killFired.Load() {
					if unexpected.Add(1) == 1 {
						log.Printf("crash: unexpected request failure (first): %v", err)
					}
				}
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return int(unexpected.Load())
}

func crashQuery(client *http.Client, base, user, text string) (hit bool, err error) {
	body, _ := json.Marshal(server.QueryRequest{User: user, Query: text})
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return false, err
	}
	return qr.Hit, nil
}

func fetchQuarantines(client *http.Client, base string) (int64, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Registry.Quarantines, nil
}

func startServer(cfg crashConfig) (*exec.Cmd, error) {
	cmd := exec.Command(cfg.bin,
		"-addr", cfg.addr,
		"-max-tenants", strconv.Itoa(cfg.maxTenants),
		"-persist-dir", cfg.dir,
	)
	cmd.Stderr = os.Stderr
	return cmd, cmd.Start()
}

func waitHealthy(client *http.Client, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("healthz not OK within %v", budget)
			}
			return fmt.Errorf("not reachable within %v: %w", budget, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func waitExit(proc *exec.Cmd, budget time.Duration) error {
	ch := make(chan error, 1)
	go func() { ch <- proc.Wait() }()
	select {
	case err := <-ch:
		return err
	case <-time.After(budget):
		proc.Process.Kill()
		<-ch
		return fmt.Errorf("no exit within %v", budget)
	}
}

// corruptSnapshot picks a synced tenant and wrecks its persisted cache
// payload in place — a structurally valid store record whose value is
// not the gob stream the cache loader expects. The server is down when
// this runs. Returns the victim user, removed from the synced set (its
// canonical entry is gone with the quarantined file).
func corruptSnapshot(cfg crashConfig, rng *rand.Rand, synced map[int]bool) int {
	var candidates []int
	for u := range synced {
		candidates = append(candidates, u)
	}
	sort.Ints(candidates) // map order is random; keep the seeded pick reproducible
	if len(candidates) == 0 {
		log.Printf("crash: no synced tenant to corrupt; skipping injection")
		return -1
	}
	victim := candidates[rng.Intn(len(candidates))]
	path := tenantSnapshotPath(cfg.dir, crashUser(victim))
	st, err := store.Open(path)
	if err != nil {
		log.Fatalf("crash: opening snapshot to corrupt: %v", err)
	}
	if err := st.Put("entry/0", []byte("deliberately not a gob stream")); err != nil {
		log.Fatalf("crash: corrupting snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Fatalf("crash: closing corrupted snapshot: %v", err)
	}
	delete(synced, victim)
	log.Printf("crash: corrupted snapshot of %s (%s)", crashUser(victim), path)
	return victim
}
