package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/metrics"
	"repro/internal/server"
)

// The hotspot scenario is the search-batcher acceptance run: traffic is
// skewed onto one hot tenant with a Zipf draw, so concurrent queries
// pile up against a single large cache — exactly the shape the
// per-tenant search batcher exists for. The same warmup and probe
// stream is driven twice through two in-process cacheserve stacks,
// identical except that one wires the SearchBatcher into the lookup
// path, and the runs are compared head to head.
//
// The gate (-hotspot-accept): both runs are clean, the batched stack
// demonstrably coalesces (mean search pass > 1 request with Coalesced >
// 0, read from /v1/stats), duplicate probes hit identically in both
// stacks (MultiSearch parity observed end to end, not just in unit
// tests), and the batched hit-path p99 does not exceed the unbatched
// p99 (times an optional slack multiplier for noisy CI machines).

// hotspotConfig carries the -hotspot-* flags plus the shared workload
// knobs.
type hotspotConfig struct {
	tenants     int
	cached      int // warmup entries per cold tenant
	hotCached   int // warmup entries for the hot tenant (bigger = longer scans)
	probes      int // total measured probes across all tenants
	dup         float64
	tau         float64
	concurrency int
	skew        float64       // Zipf s parameter (>1; higher = hotter hot tenant)
	batch       int           // batched stack's group-size cap (MaxBatch)
	wait        time.Duration // batched stack's gather window (MaxWait)
	seed        int64
	timeout     time.Duration
	accept      bool
	latX        float64 // batched p99 ceiling, × the unbatched p99
}

// hotspotPhase aggregates one driven run.
type hotspotPhase struct {
	mu       sync.Mutex
	requests int
	hits     int
	dupHits  int // hits on probes whose duplicate was warmed up-front
	errors   int
	firstBad string
	hitLat   metrics.LatencyRecorder // server-reported hit serving time
	hitRTT   metrics.LatencyRecorder // client-observed hit round trip
	duration time.Duration
}

func (p *hotspotPhase) report(name string) {
	fmt.Printf("%-9s %6d req  %5d hits (%d dup)  %3d errors  %8.0f req/s  hit RTT p50 %v  p99 %v  (server-side p99 %v)\n",
		name, p.requests, p.hits, p.dupHits, p.errors,
		float64(p.requests)/p.duration.Seconds(),
		p.hitRTT.Percentile(50).Round(time.Microsecond),
		p.hitRTT.Percentile(99).Round(time.Microsecond),
		p.hitLat.Percentile(99).Round(time.Microsecond))
}

// hotspotStack is one in-process cacheserve instance; batched selects
// whether the SearchBatcher is wired into the tenant factory.
type hotspotStack struct {
	hts *httptest.Server
	sb  *server.SearchBatcher
}

func newHotspotStack(cfg hotspotConfig, batched bool) *hotspotStack {
	simCfg := llmsim.DefaultConfig() // virtual time: misses cost no wall clock
	simCfg.Seed = cfg.seed
	sim := llmsim.New(simCfg)
	enc := embed.NewModel(embed.MPNetSim, cfg.seed)

	var sb *server.SearchBatcher
	var searcher cache.Searcher
	if batched {
		sb = server.NewSearchBatcher(server.BatcherConfig{MaxBatch: cfg.batch, MaxWait: cfg.wait})
		searcher = sb
	}
	// Capacity holds every warmed entry plus every novel probe the hot
	// tenant can absorb, so hit parity cannot be skewed by eviction.
	capacity := cfg.hotCached + cfg.probes + 64
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards: 8,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder:      enc,
				LLM:          sim,
				Tau:          float32(cfg.tau),
				TopK:         5,
				Capacity:     capacity,
				FeedbackStep: 0.01,
				Searcher:     searcher,
			})
		},
	})
	if err != nil {
		log.Fatalf("hotspot: registry: %v", err)
	}
	srv, err := server.New(server.Config{Registry: reg, SearchBatcher: sb})
	if err != nil {
		log.Fatalf("hotspot: server: %v", err)
	}
	return &hotspotStack{hts: httptest.NewServer(srv.Handler()), sb: sb}
}

func (s *hotspotStack) close() {
	s.hts.Close()
	if s.sb != nil {
		s.sb.Close()
	}
}

func runHotspot(cfg hotspotConfig) {
	// Per-tenant workloads: the hot tenant (index 0) gets a much larger
	// warmed cache so its scans are long enough to overlap under burst;
	// every tenant's probe pool is sized for the worst case (the Zipf
	// draw routing every probe to it).
	type tenantWork struct {
		user   string
		cached []string
		probes []dataset.Probe
	}
	works := make([]tenantWork, cfg.tenants)
	for u := 0; u < cfg.tenants; u++ {
		n := cfg.cached
		if u == 0 {
			n = cfg.hotCached
		}
		wcfg := dataset.DefaultConfig()
		wcfg.Seed = cfg.seed + int64(u)*7919
		w := dataset.GenerateCacheWorkload(wcfg, n, cfg.probes, cfg.dup)
		works[u] = tenantWork{
			user:   fmt.Sprintf("user-%04d", u),
			cached: w.Cached,
			probes: w.Probes,
		}
	}

	var warmup []job
	for _, w := range works {
		for _, q := range w.cached {
			warmup = append(warmup, job{user: w.user, text: q})
		}
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	rng.Shuffle(len(warmup), func(i, j int) { warmup[i], warmup[j] = warmup[j], warmup[i] })

	// The probe stream: tenant choice per probe is a Zipf draw, so the
	// hot tenant soaks up most of the burst while the tail keeps the
	// cross-tenant mix honest (groups must partition by cache).
	zipf := rand.NewZipf(rng, cfg.skew, 1, uint64(cfg.tenants-1))
	cursor := make([]int, cfg.tenants)
	hotProbes := 0
	var probeJobs []job
	for i := 0; i < cfg.probes; i++ {
		t := int(zipf.Uint64())
		if t == 0 {
			hotProbes++
		}
		w := works[t]
		p := w.probes[cursor[t]%len(w.probes)]
		cursor[t]++
		probeJobs = append(probeJobs, job{user: w.user, text: p.Text, dup: p.DupOf >= 0, probe: true})
	}

	log.Printf("hotspot scenario: %d tenants, hot tenant holds %d entries and draws %.0f%% of %d probes (skew %.2f), %d workers",
		cfg.tenants, cfg.hotCached, 100*float64(hotProbes)/float64(cfg.probes), cfg.probes, cfg.skew, cfg.concurrency)

	// Identical warmup + probe stream through both stacks; unbatched
	// first so its numbers anchor the comparison.
	run := func(name string, batched bool) (*hotspotPhase, *server.BatcherStats) {
		stack := newHotspotStack(cfg, batched)
		defer stack.close()
		d := &hotspotDriver{client: &http.Client{Timeout: cfg.timeout}, base: stack.hts.URL}
		warm := &hotspotPhase{}
		d.drive(warmup, cfg.concurrency, warm)
		if warm.errors > 0 {
			log.Fatalf("hotspot: %s warmup failed (%d errors, first: %s)", name, warm.errors, warm.firstBad)
		}
		phase := &hotspotPhase{}
		d.drive(probeJobs, cfg.concurrency, phase)
		return phase, d.searchBatcherStats()
	}
	direct, _ := run("unbatched", false)
	batched, sbStats := run("batched", true)

	fmt.Printf("\n=== hotspot search-batching report (%d tenants, %d probes) ===\n", cfg.tenants, cfg.probes)
	direct.report("unbatched")
	batched.report("batched")
	if sbStats != nil {
		fmt.Printf("batcher          %d searches in %d passes (mean %.2f, %d coalesced)\n",
			sbStats.Requests, sbStats.Batches, sbStats.MeanBatch, sbStats.Coalesced)
	}

	// The p99 gate compares the client-observed hit round trip: on an
	// oversubscribed box the batcher's channel handoffs move queueing
	// that clients pay anyway from the accept queue into the server-side
	// measurement window, so the server-reported serving time would
	// penalise batching for latency the client never sees twice.
	directP99 := direct.hitRTT.Percentile(99)
	batchedP99 := batched.hitRTT.Percentile(99)
	gates := []struct {
		name   string
		pass   bool
		detail string
	}{
		{"clean run", direct.errors == 0 && batched.errors == 0,
			fmt.Sprintf("%d + %d errors (first: %s%s)", direct.errors, batched.errors, direct.firstBad, batched.firstBad)},
		{"coalescing", sbStats != nil && sbStats.Coalesced > 0 && sbStats.MeanBatch > 1,
			func() string {
				if sbStats == nil {
					return "no search_batcher block in /v1/stats"
				}
				return fmt.Sprintf("mean pass %.2f requests, %d coalesced (gate > 1 mean, > 0 coalesced)",
					sbStats.MeanBatch, sbStats.Coalesced)
			}()},
		// Duplicate probes target entries warmed before any probe ran, so
		// their hits are arrival-order independent — except for the handful
		// of near-τ paraphrases that only hit via a novel probe inserted
		// earlier in the same phase, whose presence depends on closed-loop
		// arrival order. The parity bar therefore allows 1% drift; a
		// batching correctness bug (wrong scores, dropped matches) moves
		// hits by far more.
		{"hit parity", parityDrift(batched.dupHits, direct.dupHits) <= 0.01 && batched.dupHits > 0,
			fmt.Sprintf("%d batched vs %d unbatched duplicate hits (gate ≤ 1%% drift)", batched.dupHits, direct.dupHits)},
		{"hit-path p99", directP99 > 0 && float64(batchedP99) <= cfg.latX*float64(directP99),
			fmt.Sprintf("%v batched vs %v unbatched (gate ≤ %.2f×)", batchedP99, directP99, cfg.latX)},
	}
	fail := false
	for _, g := range gates {
		verdict := "PASS"
		if !g.pass {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("%s %-18s %s\n", verdict, g.name, g.detail)
	}
	if cfg.accept && fail {
		fmt.Println("ACCEPT FAIL: the search-batching gate did not hold")
		os.Exit(1)
	}
	if cfg.accept {
		fmt.Printf("ACCEPT PASS: coalesced %.2f searches per pass with hit-path p99 %v vs %v unbatched\n",
			sbStats.MeanBatch, batchedP99, directP99)
	}
}

// parityDrift is the relative duplicate-hit disagreement between the
// two stacks.
func parityDrift(a, b int) float64 {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if b == 0 {
		return 1
	}
	return float64(diff) / float64(b)
}

// hotspotDriver is the closed-loop worker pool for one stack.
type hotspotDriver struct {
	client *http.Client
	base   string
}

func (d *hotspotDriver) drive(jobs []job, concurrency int, st *hotspotPhase) {
	start := time.Now()
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				d.one(j, st)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	st.duration = time.Since(start)
}

func (d *hotspotDriver) one(j job, st *hotspotPhase) {
	body, _ := json.Marshal(server.QueryRequest{User: j.user, Query: j.text})
	start := time.Now()
	resp, err := d.client.Post(d.base+"/v1/query", "application/json", bytes.NewReader(body))
	rtt := time.Since(start)
	if err != nil {
		d.fail(st, fmt.Sprintf("transport: %v", err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		d.fail(st, fmt.Sprintf("status %d", resp.StatusCode))
		return
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		d.fail(st, fmt.Sprintf("decoding response: %v", err))
		return
	}
	st.mu.Lock()
	st.requests++
	if qr.Hit {
		st.hits++
		if j.dup {
			st.dupHits++
		}
		st.hitRTT.Record(rtt)
		st.hitLat.Record(time.Duration(qr.LatencyMicros) * time.Microsecond)
	}
	st.mu.Unlock()
}

func (d *hotspotDriver) fail(st *hotspotPhase, msg string) {
	st.mu.Lock()
	st.requests++
	st.errors++
	if st.firstBad == "" {
		st.firstBad = msg
	}
	st.mu.Unlock()
}

// searchBatcherStats reads the batched stack's coalescing counters from
// /v1/stats — the same surface operators see, so the gate asserts the
// observable contract rather than process internals.
func (d *hotspotDriver) searchBatcherStats() *server.BatcherStats {
	resp, err := d.client.Get(d.base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return st.SearchBatcher
}
