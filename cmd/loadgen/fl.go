package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/flserve"
)

// flConfig parameterises the online FL scenario.
type flConfig struct {
	users       int
	cached      int // intents warmed into each user's cache
	probes      int // measured probes per user per phase
	dup         float64
	concurrency int
	rounds      int
	seed        int64
}

// flWorkload holds the shared-lexicon, private-intent workload: one
// dataset generator (so every user's vocabulary hashes into the same
// token space and federated averaging pools knowledge, as with the
// paper's common corpus), but each user warms a disjoint intent set —
// their private data, which never leaves their tenant.
type flWorkload struct {
	gen *dataset.Generator
	rng *rand.Rand
	cfg flConfig

	// per user: warmed intents and their cached realisations
	intents [][]dataset.Intent
	cachedQ [][]string
	nextID  int
}

func newFLWorkload(cfg flConfig) *flWorkload {
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Seed = cfg.seed
	rng := rand.New(rand.NewSource(cfg.seed + 5000))
	w := &flWorkload{
		gen:     dataset.NewGenerator(corpusCfg, rng),
		rng:     rng,
		cfg:     cfg,
		intents: make([][]dataset.Intent, cfg.users),
		cachedQ: make([][]string, cfg.users),
	}
	for u := 0; u < cfg.users; u++ {
		w.intents[u] = make([]dataset.Intent, cfg.cached)
		w.cachedQ[u] = make([]string, cfg.cached)
		for i := range w.intents[u] {
			w.intents[u][i] = w.gen.NewIntent(w.nextID)
			w.nextID++
			w.cachedQ[u][i] = w.gen.Realize(w.intents[u][i])
		}
	}
	return w
}

func userName(u int) string { return fmt.Sprintf("user-%04d", u) }

// warmupJobs populates every user's cache.
func (w *flWorkload) warmupJobs() []job {
	var jobs []job
	for u := 0; u < w.cfg.users; u++ {
		for _, q := range w.cachedQ[u] {
			jobs = append(jobs, job{user: userName(u), text: q})
		}
	}
	w.rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	return jobs
}

// phaseJobs builds one measurement phase: per user, fresh probe
// realisations — duplicates of warmed intents (never repeating an earlier
// phase's exact text) and brand-new intents, hard negatives included at
// the corpus rate.
func (w *flWorkload) phaseJobs() []job {
	var jobs []job
	cfg := dataset.DefaultConfig() // hard-negative rates only
	for u := 0; u < w.cfg.users; u++ {
		nDup := int(float64(w.cfg.probes)*w.cfg.dup + 0.5)
		for i := 0; i < w.cfg.probes; i++ {
			j := job{user: userName(u), probe: true, fl: true}
			if i < nDup {
				idx := w.rng.Intn(len(w.intents[u]))
				j.text = w.gen.Realize(w.intents[u][idx])
				j.dup = true
				j.dupText = w.cachedQ[u][idx]
			} else {
				var it dataset.Intent
				if w.rng.Float64() < cfg.HardNegativeRate {
					base := w.intents[u][w.rng.Intn(len(w.intents[u]))]
					it = w.gen.NewIntentSharing(-1, base, cfg.SharedConcepts)
				} else {
					it = w.gen.NewIntent(-1)
				}
				j.text = w.gen.Realize(it)
			}
			jobs = append(jobs, j)
		}
	}
	w.rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	return jobs
}

// phaseResult is one row of the trajectory table.
type phaseResult struct {
	label     string
	version   string
	tau       float64
	hitRatio  float64
	precision float64
	recall    float64
	f1        float64
	queries   int
	errors    int
	roundMS   int64
}

// runFL drives the online federated-learning scenario: baseline phase
// under the frozen model, then rounds of (feedback-annotated probes → FL
// round → rollout → fresh probes), reporting the quality trajectory.
func runFL(r *runner, cfg flConfig) {
	log.Printf("online FL scenario: %d users sharing one lexicon, %d warmed intents each, %d probes/phase, %d rounds",
		cfg.users, cfg.cached, cfg.probes, cfg.rounds)
	w := newFLWorkload(cfg)

	warm := w.warmupJobs()
	log.Printf("warmup: %d queries", len(warm))
	r.drive(warm, cfg.concurrency)
	if r.errors > 0 {
		log.Fatalf("warmup saw %d errors", r.errors)
	}

	// roundClient allows FL rounds (training + rollout) to take minutes.
	roundClient := &http.Client{Timeout: 10 * time.Minute}

	var results []phaseResult
	for phase := 0; phase <= cfg.rounds; phase++ {
		r.resetMeasurement()
		jobs := w.phaseJobs()
		start := time.Now()
		r.drive(jobs, cfg.concurrency)
		elapsed := time.Since(start)

		r.mu.Lock()
		res := phaseResult{
			hitRatio:  ratio(r.hits, r.queries),
			precision: r.confusion.Precision(),
			recall:    r.confusion.Recall(),
			f1:        r.confusion.F1(),
			queries:   r.queries,
			errors:    r.errors,
		}
		r.mu.Unlock()
		if phase == 0 {
			res.label = "baseline"
			res.version = "(frozen)"
		} else {
			res.label = fmt.Sprintf("round %d", phase)
		}

		// Status reflects the model this phase ran under.
		var st flserve.Status
		if err := getJSON(r.client, r.base+"/v1/fl/status", &st); err != nil {
			log.Fatalf("fetching /v1/fl/status (is cacheserve running with -fl?): %v", err)
		}
		res.tau = st.Tau
		if phase > 0 && st.Current != nil {
			res.version = st.Current.Version
		}
		log.Printf("%s: hit %.1f%% F1 %.3f (P %.3f R %.3f) over %d probes in %v",
			res.label, 100*res.hitRatio, res.f1, res.precision, res.recall, res.queries, elapsed.Round(time.Millisecond))

		results = append(results, res)

		// Trigger the next round (except after the final phase).
		if phase < cfg.rounds {
			rep, err := postRound(roundClient, r.base)
			if err != nil {
				log.Fatalf("FL round %d: %v", phase, err)
			}
			results[len(results)-1].roundMS = rep.TookMillis
			log.Printf("round %d: version %s tau=%.3f trained=%d/%d eligible=%d reembedded=%d entries in %dms",
				phase+1, rep.Version, rep.Tau, rep.Trained, rep.Cohort, rep.Eligible, rep.Reembedded, rep.TookMillis)
		}
	}

	reportFL(r, results)
	r.mu.Lock()
	errs := r.errors
	r.mu.Unlock()
	if errs > 0 {
		os.Exit(1)
	}
}

func reportFL(r *runner, results []phaseResult) {
	fmt.Printf("\n=== online FL trajectory ===\n")
	fmt.Printf("%-10s %-18s %7s %8s %7s %7s %7s %9s\n",
		"phase", "model", "tau", "hit%", "P", "R", "F1", "round ms")
	for _, res := range results {
		fmt.Printf("%-10s %-18s %7.3f %8.1f %7.3f %7.3f %7.3f %9d\n",
			res.label, res.version, res.tau, 100*res.hitRatio, res.precision, res.recall, res.f1, res.roundMS)
	}
	base, last := results[0], results[len(results)-1]
	fmt.Printf("\nvs frozen baseline: hit ratio %.1f%% -> %.1f%% (%+.1f pts), F1 %.3f -> %.3f (%+.3f)\n",
		100*base.hitRatio, 100*last.hitRatio, 100*(last.hitRatio-base.hitRatio),
		base.f1, last.f1, last.f1-base.f1)
	if last.f1 > base.f1 && last.hitRatio > base.hitRatio {
		fmt.Println("improved over the frozen-model baseline ✓")
	} else {
		fmt.Println("WARNING: no improvement over the frozen-model baseline")
	}

	var st flserve.Status
	if err := getJSON(r.client, r.base+"/v1/fl/status", &st); err == nil {
		var lineage []string
		for i := len(st.Versions) - 1; i >= 0; i-- {
			lineage = append(lineage, st.Versions[i].Version)
		}
		fmt.Printf("model lineage    %s\n", strings.Join(lineage, " -> "))
		fmt.Printf("collector        %d tenants, %d pairs (%d+, %d-, %d retracted)\n",
			st.Collector.Tenants, st.Collector.Pairs, st.Collector.Positives, st.Collector.Negatives, st.Collector.Retracted)
		fmt.Printf("rollouts         %d swaps, %d entries re-embedded (%d at activation)\n",
			st.Rollouts.Swaps, st.Rollouts.EntriesReembedded, st.Rollouts.ActivationsMigrated)
	}
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func postRound(client *http.Client, base string) (flserve.RoundReport, error) {
	var rep flserve.RoundReport
	resp, err := client.Post(base+"/v1/fl/round", "application/json", nil)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK {
		return rep, fmt.Errorf("round failed: %s", rep.Error)
	}
	return rep, nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
