// Command loadgen is a closed-loop multi-user load generator for
// cmd/cacheserve. Each simulated user gets their own workload
// (internal/dataset, with ground-truth duplicate labels): a warmup phase
// populates the user's cache, then a probe phase measures serving
// behaviour. A fixed pool of workers drives the server at the configured
// concurrency; every request waits for its response before the worker
// takes the next job (closed loop).
//
// The report covers throughput, hit ratio, cache-decision quality against
// ground truth (precision/recall/F1 via internal/metrics), and latency
// percentiles, plus the server's own /v1/stats aggregate. Against a
// cacheserve started with -metrics, /metrics is scraped at each phase
// boundary and the report adds a per-stage server-side latency
// breakdown (decode/encode/search/upstream/cachefill/respond).
//
// With -fl N the generator instead drives the online federated-learning
// scenario against a cacheserve started with -fl: users share one lexicon
// (so federated averaging genuinely pools knowledge) but hold private
// intent sets; each probe phase files the user feedback the FL collector
// learns from (missed_dup for duplicates the cache failed to serve,
// false_hit for wrong hits), then triggers one FL round and measures the
// next phase under the rolled-out model. The report is the
// hit-ratio/F1/τ trajectory across rounds against the phase-0
// frozen-model baseline.
//
// With -scenario ann the generator instead benchmarks the large-cache
// index tiers in process (no server): it builds a clustered corpus under
// each requested index (-ann-indexes) and reports recall@k plus latency
// percentiles against the exact Flat ground truth, with an optional
// acceptance gate (-ann-accept: HNSW ≥5× Flat at recall@10 ≥ 0.95).
//
// With -scenario overload the generator runs the degraded-serving
// acceptance run in process: a full cacheserve stack (resilience
// governor, guarded sleeping llmsim upstream) is driven through a
// healthy baseline, an upstream brown-out, a full outage at ≥10×
// capacity, and a recovery, asserting via /metrics and the structured
// shed responses that the limiter adapts, the breaker trips to
// cache-only serving and re-closes, and hit throughput/latency hold
// (-overload-accept gates on it).
//
// With -scenario hotspot the generator runs the search-batching
// acceptance run in process: a Zipf draw skews probe traffic onto one
// hot tenant, and the same stream is driven through two otherwise
// identical stacks — one with the per-tenant search batcher wired in,
// one without. The gate (-hotspot-accept) asserts both runs are clean,
// the batched stack coalesces (mean search pass > 1 via /v1/stats),
// duplicate hits match exactly across the stacks, and the batched
// hit-path p99 does not exceed the unbatched p99.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8090 -users 100 -probes 12 -concurrency 32
//	loadgen -addr 127.0.0.1:8090 -users 50 -fl 3
//	loadgen -scenario ann -ann-n 200000 -ann-accept
//	loadgen -scenario overload -users 60 -overload-accept
//	loadgen -scenario hotspot -hotspot-accept
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/server"
)

type job struct {
	user  string
	text  string
	dup   bool // ground truth: a cached duplicate exists
	probe bool // measurement phase (false = warmup)

	// fl-scenario fields
	fl      bool   // file feedback from the outcome (online FL mode)
	dupText string // the cached query this probe duplicates (for missed_dup)
}

// runner aggregates results across workers.
type runner struct {
	client *http.Client
	base   string

	mu        sync.Mutex
	confusion metrics.Confusion
	latency   metrics.LatencyRecorder
	hits      int
	queries   int
	errors    int
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "cacheserve address (host:port)")
		users       = flag.Int("users", 100, "number of simulated users")
		cached      = flag.Int("cached", 8, "warmup queries per user (populate the tenant cache)")
		probes      = flag.Int("probes", 12, "measured probes per user")
		dup         = flag.Float64("dup", 0.3, "fraction of probes that duplicate a cached query")
		concurrency = flag.Int("concurrency", 32, "concurrent in-flight requests")
		seed        = flag.Int64("seed", 42, "workload generation seed")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		flRounds    = flag.Int("fl", 0, "online FL rounds to drive (0 = classic load test)")

		scenario   = flag.String("scenario", "serve", "serve (drive a cacheserve instance), ann (in-process large-cache index comparison), cluster (in-process N-node failover run) or overload (in-process degraded-serving run)")
		annN       = flag.Int("ann-n", 200000, "ann: corpus size")
		annDim     = flag.Int("ann-dim", 64, "ann: vector dimensionality")
		annQueries = flag.Int("ann-queries", 500, "ann: measured queries")
		annK       = flag.Int("ann-k", 10, "ann: neighbors per query (recall@k)")
		annIndexes = flag.String("ann-indexes", "flat,ivf,hnsw,hnsw8", "ann: indexes to compare (must start with flat)")
		annM       = flag.Int("ann-m", 16, "ann: HNSW links per node")
		annEfCons  = flag.Int("ann-ef-construction", 100, "ann: HNSW insertion beam width")
		annEf      = flag.Int("ann-ef-search", 96, "ann: HNSW query beam width")
		annAccept  = flag.Bool("ann-accept", false, "ann: exit non-zero if the acceptance gate fails")

		clusterNodes     = flag.Int("cluster-nodes", 3, "cluster: in-process nodes")
		clusterVNodes    = flag.Int("cluster-vnodes", 64, "cluster: virtual nodes per member")
		clusterKill      = flag.Int("cluster-kill", 1, "cluster: node index killed mid-run (-1 = no kill)")
		clusterAccept    = flag.Bool("cluster-accept", false, "cluster: exit non-zero if the failover gate fails")
		clusterRetention = flag.Float64("cluster-retention", 0.9, "cluster: dup-hit-rate retention floor after failover")

		hotTenants     = flag.Int("hotspot-tenants", 12, "hotspot: simulated tenants (tenant 0 is the hot one)")
		hotCached      = flag.Int("hotspot-cached", 48, "hotspot: warmup entries per cold tenant")
		hotCachedHot   = flag.Int("hotspot-hot-cached", 4096, "hotspot: warmup entries for the hot tenant")
		hotProbes      = flag.Int("hotspot-probes", 4000, "hotspot: total measured probes across all tenants")
		hotDup         = flag.Float64("hotspot-dup", 0.95, "hotspot: duplicate fraction of probe traffic")
		hotTau         = flag.Float64("hotspot-tau", 0.80, "hotspot: serving similarity threshold (higher prunes more of the scan)")
		hotConcurrency = flag.Int("hotspot-concurrency", 24, "hotspot: concurrent in-flight requests (the burst)")
		hotSkew        = flag.Float64("hotspot-skew", 2.5, "hotspot: Zipf skew of the tenant draw (>1)")
		hotBatch       = flag.Int("hotspot-batch", 8, "hotspot: batched stack's group-size cap (-search-batch equivalent)")
		hotWait        = flag.Duration("hotspot-wait", 200*time.Microsecond, "hotspot: batched stack's gather window (-search-batch-wait equivalent)")
		hotLatX        = flag.Float64("hotspot-latency-x", 1.0, "hotspot: batched hit-path p99 ceiling, × the unbatched p99")
		hotAccept      = flag.Bool("hotspot-accept", false, "hotspot: exit non-zero if the search-batching gate fails")

		crashBin        = flag.String("crash-bin", "./bin/cacheserve", "crash: cacheserve binary to run and kill")
		crashDir        = flag.String("crash-dir", "bin/crashtenants", "crash: persist dir shared across incarnations")
		crashAddr       = flag.String("crash-addr", "127.0.0.1:18095", "crash: address the spawned server listens on")
		crashCycles     = flag.Int("crash-cycles", 26, "crash: restart cycles (every 6th is a clean shutdown, the rest SIGKILL)")
		crashUsers      = flag.Int("crash-users", 24, "crash: simulated tenants")
		crashMaxTenants = flag.Int("crash-max-tenants", 8, "crash: server resident-tenant bound (< users forces eviction churn)")
		crashAccept     = flag.Bool("crash-accept", false, "crash: exit non-zero if the crash-loop gate fails")

		overloadFactor    = flag.Int("overload-factor", 10, "overload: offered-load multiple of healthy capacity the outage phase must reach")
		overloadDup       = flag.Float64("overload-dup", 0.6, "overload: duplicate fraction of probe traffic (cache-only serving needs hits to serve)")
		overloadRetention = flag.Float64("overload-retention", 0.9, "overload: served-throughput floor during the outage, as a fraction of healthy capacity")
		overloadLatX      = flag.Float64("overload-latency-x", 5, "overload: hit-path p99 inflation ceiling during the outage (× the unloaded p99)")
		overloadAccept    = flag.Bool("overload-accept", false, "overload: exit non-zero if the degraded-serving gate fails")
	)
	flag.Parse()

	if *scenario == "ann" {
		runANN(annConfig{
			n: *annN, dim: *annDim, queries: *annQueries, k: *annK,
			seed: *seed, indexes: *annIndexes,
			m: *annM, efCons: *annEfCons, ef: *annEf, accept: *annAccept,
		})
		return
	}
	if *scenario == "cluster" {
		runCluster(clusterConfig{
			nodes: *clusterNodes, vnodes: *clusterVNodes, killIndex: *clusterKill,
			users: *users, cached: *cached, probes: *probes, dup: *dup,
			concurrency: *concurrency, seed: *seed, timeout: *timeout,
			accept: *clusterAccept, retention: *clusterRetention,
		})
		return
	}
	if *scenario == "overload" {
		runOverload(overloadConfig{
			users: *users, cached: *cached, probes: *probes, dup: *overloadDup,
			concurrency: *concurrency, factor: *overloadFactor, seed: *seed,
			timeout: *timeout, accept: *overloadAccept,
			retention: *overloadRetention, latencyX: *overloadLatX,
		})
		return
	}
	if *scenario == "hotspot" {
		runHotspot(hotspotConfig{
			tenants: *hotTenants, cached: *hotCached, hotCached: *hotCachedHot,
			probes: *hotProbes, dup: *hotDup, tau: *hotTau, concurrency: *hotConcurrency,
			skew: *hotSkew, batch: *hotBatch, wait: *hotWait, seed: *seed, timeout: *timeout,
			accept: *hotAccept, latX: *hotLatX,
		})
		return
	}
	if *scenario == "crash" {
		runCrash(crashConfig{
			bin: *crashBin, dir: *crashDir, addr: *crashAddr,
			cycles: *crashCycles, users: *crashUsers, maxTenants: *crashMaxTenants,
			concurrency: *concurrency, seed: *seed, timeout: *timeout,
			accept: *crashAccept,
		})
		return
	}
	if *scenario != "serve" {
		log.Fatalf("unknown -scenario %q (want serve, ann, cluster, overload, hotspot or crash)", *scenario)
	}

	r := &runner{
		client: &http.Client{Timeout: *timeout},
		base:   "http://" + *addr,
	}
	if err := r.health(); err != nil {
		log.Fatalf("server not healthy at %s: %v", *addr, err)
	}

	if *flRounds > 0 {
		runFL(r, flConfig{
			users:       *users,
			cached:      *cached,
			probes:      *probes,
			dup:         *dup,
			concurrency: *concurrency,
			rounds:      *flRounds,
			seed:        *seed,
		})
		return
	}

	log.Printf("generating workloads for %d users (%d warmup + %d probes each, %.0f%% duplicates)",
		*users, *cached, *probes, 100**dup)
	warmup, probeJobs := buildJobs(*users, *cached, *probes, *dup, *seed)

	// /metrics is scraped at every phase boundary: diffing the server's
	// stage histograms across a phase gives the per-stage latency
	// breakdown the wire-level RTT cannot see. A server without -metrics
	// simply yields no breakdown.
	preWarm := scrapeStages(r.client, r.base)

	log.Printf("warmup: %d queries", len(warmup))
	r.drive(warmup, *concurrency)
	warmQueries, warmErrors := r.queries, r.errors
	r.resetMeasurement()
	postWarm := scrapeStages(r.client, r.base)

	log.Printf("measuring: %d probes at concurrency %d", len(probeJobs), *concurrency)
	start := time.Now()
	r.drive(probeJobs, *concurrency)
	elapsed := time.Since(start)
	postProbe := scrapeStages(r.client, r.base)

	r.report(*users, warmQueries, warmErrors, elapsed)
	if bd := stageBreakdown(postWarm, postProbe); bd != "" {
		fmt.Printf("server stages    %s (mean per request, probe phase)\n", bd)
	}
	if bd := stageBreakdown(preWarm, postWarm); bd != "" {
		fmt.Printf("                 %s (warmup phase)\n", bd)
	}
	if r.errors > 0 {
		os.Exit(1)
	}
}

// buildJobs derives every user's workload. Per-user seeds give each user
// distinct intents; the shuffle interleaves users so concurrent traffic
// mixes tenants (exercising cross-tenant encode batching server-side).
func buildJobs(users, cached, probes int, dup float64, seed int64) (warmup, probeJobs []job) {
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < users; u++ {
		cfg := dataset.DefaultConfig()
		cfg.Seed = seed + int64(u)*7919
		w := dataset.GenerateCacheWorkload(cfg, cached, probes, dup)
		user := fmt.Sprintf("user-%04d", u)
		for _, q := range w.Cached {
			warmup = append(warmup, job{user: user, text: q})
		}
		for _, p := range w.Probes {
			probeJobs = append(probeJobs, job{user: user, text: p.Text, dup: p.DupOf >= 0, probe: true})
		}
	}
	rng.Shuffle(len(warmup), func(i, j int) { warmup[i], warmup[j] = warmup[j], warmup[i] })
	rng.Shuffle(len(probeJobs), func(i, j int) { probeJobs[i], probeJobs[j] = probeJobs[j], probeJobs[i] })
	return warmup, probeJobs
}

// drive runs jobs through a closed-loop worker pool.
func (r *runner) drive(jobs []job, concurrency int) {
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				r.one(j)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

func (r *runner) one(j job) {
	body, _ := json.Marshal(server.QueryRequest{User: j.user, Query: j.text})
	start := time.Now()
	resp, err := r.client.Post(r.base+"/v1/query", "application/json", bytes.NewReader(body))
	rtt := time.Since(start)
	if err != nil {
		r.recordError(err)
		return
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if resp.StatusCode != http.StatusOK {
		r.recordError(fmt.Errorf("status %d", resp.StatusCode))
		return
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		r.recordError(err)
		return
	}
	// Latency blends the wire round trip with the server-reported
	// simulated upstream time, mirroring llmsim.Client: in virtual-time
	// deployments the simulated inference is not in the wire time.
	lat := rtt
	if sim := time.Duration(qr.LatencyMicros) * time.Microsecond; sim > lat {
		lat = sim
	}
	r.mu.Lock()
	r.queries++
	if qr.Hit {
		r.hits++
	}
	if j.probe {
		r.confusion.Add(j.dup, qr.Hit)
		r.latency.Record(lat)
	}
	r.mu.Unlock()

	if j.fl {
		r.fileFeedback(j, qr)
	}
}

// fileFeedback plays the user's role in the online FL loop: a duplicate
// the cache failed to serve is reported as missed_dup (pointing at the
// earlier question), a hit on a genuinely new query as false_hit. Correct
// outcomes need no report — the hit itself already taught the collector a
// positive pair.
func (r *runner) fileFeedback(j job, qr server.QueryResponse) {
	var fb server.FeedbackRequest
	switch {
	case j.dup && !qr.Hit && j.dupText != "":
		fb = server.FeedbackRequest{
			User: j.user, Kind: server.FeedbackMissedDup,
			Query: j.text, DuplicateOf: j.dupText,
		}
	case !j.dup && qr.Hit:
		fb = server.FeedbackRequest{
			User: j.user, Kind: server.FeedbackFalseHit,
			Query: j.text, DuplicateOf: qr.Matched,
		}
	default:
		return
	}
	body, _ := json.Marshal(fb)
	resp, err := r.client.Post(r.base+"/v1/feedback", "application/json", bytes.NewReader(body))
	if err != nil {
		r.recordError(err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.recordError(fmt.Errorf("feedback status %d", resp.StatusCode))
	}
}

func (r *runner) recordError(err error) {
	r.mu.Lock()
	r.errors++
	first := r.errors == 1
	r.mu.Unlock()
	if first {
		log.Printf("request error (first): %v", err)
	}
}

func (r *runner) resetMeasurement() {
	r.mu.Lock()
	r.queries, r.hits, r.errors = 0, 0, 0
	r.mu.Unlock()
}

func (r *runner) health() error {
	resp, err := r.client.Get(r.base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

func (r *runner) report(users, warmQueries, warmErrors int, elapsed time.Duration) {
	fmt.Printf("\n=== loadgen report ===\n")
	fmt.Printf("users            %d\n", users)
	fmt.Printf("warmup           %d queries (%d errors)\n", warmQueries, warmErrors)
	fmt.Printf("probes           %d queries in %v (%.1f qps)\n",
		r.queries, elapsed.Round(time.Millisecond), float64(r.queries)/elapsed.Seconds())
	fmt.Printf("errors           %d\n", r.errors)
	if r.queries > 0 {
		fmt.Printf("hit ratio        %.1f%% (%d hits)\n", 100*float64(r.hits)/float64(r.queries), r.hits)
	}
	fmt.Printf("cache decisions  precision %.3f  recall %.3f  F1 %.3f  accuracy %.3f\n",
		r.confusion.Precision(), r.confusion.Recall(), r.confusion.F1(), r.confusion.Accuracy())
	fmt.Printf("latency          mean %v  p50 %v  p95 %v  p99 %v\n",
		r.latency.Mean().Round(time.Microsecond),
		r.latency.Percentile(50).Round(time.Microsecond),
		r.latency.Percentile(95).Round(time.Microsecond),
		r.latency.Percentile(99).Round(time.Microsecond))

	resp, err := r.client.Get(r.base + "/v1/stats")
	if err != nil {
		log.Printf("fetching server stats: %v", err)
		return
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Printf("decoding server stats: %v", err)
		return
	}
	fmt.Printf("server aggregate %d queries, hit ratio %.1f%%, search mean %dµs, p95 %dµs\n",
		st.Aggregate.Queries, 100*st.Aggregate.HitRatio, st.Aggregate.SearchMicros, st.Aggregate.P95Micros)
	fmt.Printf("server registry  %d resident tenants, %d activations, %d evictions\n",
		st.Registry.Resident, st.Registry.Activations, st.Registry.Evictions)
	if st.Batcher != nil {
		fmt.Printf("server batcher   %d requests in %d batches (mean %.2f, %d coalesced)\n",
			st.Batcher.Requests, st.Batcher.Batches, st.Batcher.MeanBatch, st.Batcher.Coalesced)
	}
}
