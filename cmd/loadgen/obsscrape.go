package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// stageOrder is the serving pipeline order used for the breakdown rows.
var stageOrder = []string{"decode", "encode", "search", "upstream", "cachefill", "respond"}

// stageScrape is one /metrics snapshot of the server's per-stage latency
// histograms (meancache_stage_duration_seconds _sum/_count per stage).
// ok is false when the server does not expose /metrics (started without
// -metrics) — the breakdown is then silently skipped.
type stageScrape struct {
	ok     bool
	sums   map[string]float64 // stage -> cumulative seconds
	counts map[string]float64 // stage -> cumulative observations
}

// scrapeStages snapshots the server's stage histograms at a phase
// boundary. Errors degrade to an empty snapshot: load generation must
// never fail because observability is off.
func scrapeStages(client *http.Client, base string) stageScrape {
	s := stageScrape{sums: map[string]float64{}, counts: map[string]float64{}}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return s
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		return s
	}
	exp, err := obs.ParseExposition(payload)
	if err != nil {
		return s
	}
	fam := exp.Families["meancache_stage_duration_seconds"]
	if fam == nil {
		return s
	}
	for _, sample := range fam.Samples {
		stage := sample.Labels["stage"]
		if stage == "" {
			continue
		}
		switch {
		case strings.HasSuffix(sample.Name, "_sum"):
			s.sums[stage] = sample.Value
		case strings.HasSuffix(sample.Name, "_count"):
			s.counts[stage] = sample.Value
		}
	}
	s.ok = true
	return s
}

// stageBreakdown renders the mean per-stage latency over the phase
// between two snapshots, in pipeline order. Stages that saw no traffic
// in the window (e.g. upstream during an all-hit phase) are omitted.
func stageBreakdown(before, after stageScrape) string {
	if !before.ok || !after.ok {
		return ""
	}
	var parts []string
	for _, stage := range stageOrder {
		n := after.counts[stage] - before.counts[stage]
		if n <= 0 {
			continue
		}
		mean := time.Duration((after.sums[stage] - before.sums[stage]) / n * float64(time.Second))
		parts = append(parts, fmt.Sprintf("%s %v", stage, mean.Round(time.Microsecond)))
	}
	if len(parts) == 0 {
		return ""
	}
	return strings.Join(parts, "  ")
}
