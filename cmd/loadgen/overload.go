package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/server"
)

// The overload scenario is the degraded-serving acceptance run: a full
// cacheserve stack (registry, governor, guarded llmsim upstream in real
// sleep mode) runs inside this process so the harness can turn the
// upstream's degradation knobs mid-run. Five driven phases:
//
//	warmup    populate every tenant's cache (healthy upstream)
//	baseline  healthy probe traffic — measures serving capacity and the
//	          unloaded hit-path p99 the gates compare against
//	brownout  the upstream slows 4×; the AIMD limiter must detect the
//	          congestion, shrink the upstream concurrency, and shed the
//	          overflow with 503 saturated instead of queueing into it
//	outage    the upstream fails outright under ≥10× offered load; the
//	          circuit breaker must trip and the node must keep serving
//	          cache hits at capacity while shedding misses with
//	          503 breaker_open + Retry-After
//	heal      the upstream recovers; half-open probes must re-close the
//	          breaker and full serving must resume
//
// The gate (-overload-accept): offered load during the outage reaches
// the configured multiple of healthy capacity, served throughput stays
// within the retention floor of capacity, the hit-path p99 stays under
// the inflation ceiling, the breaker demonstrably trips open (asserted
// via /metrics) and recovers after the upstream heals, and no phase sees
// a single transport error, panic, or unexpected status.

// overloadConfig carries the -overload-* flags plus the shared workload
// knobs.
type overloadConfig struct {
	users       int
	cached      int
	probes      int // per phase, per user (the outage phase runs factor× this)
	dup         float64
	concurrency int // healthy-phase worker pool
	factor      int // offered-load multiple the outage must reach
	seed        int64
	timeout     time.Duration
	accept      bool
	retention   float64 // served-throughput floor during the outage (× capacity)
	latencyX    float64 // hit-path p99 inflation ceiling (× unloaded p99)
}

// overloadPhase aggregates one driven phase by response class.
type overloadPhase struct {
	mu         sync.Mutex
	requests   int
	served     int // 200s
	hits       int
	degraded   int            // hits flagged cache-only degraded
	sheds      map[string]int // structured shed code -> count (429/503)
	upstream   int            // 502 upstream_error responses
	unexpected int            // transport failures, unknown statuses, bad bodies
	firstBad   string
	hitLat     metrics.LatencyRecorder // server-reported hit serving time
	duration   time.Duration
}

func newOverloadPhase() *overloadPhase {
	return &overloadPhase{sheds: map[string]int{}}
}

func (p *overloadPhase) fail(msg string) {
	p.mu.Lock()
	p.requests++
	p.unexpected++
	if p.firstBad == "" {
		p.firstBad = msg
	}
	p.mu.Unlock()
}

func (p *overloadPhase) shedTotal() int {
	n := 0
	for _, c := range p.sheds {
		n += c
	}
	return n
}

// offeredRate is every request the closed loop pushed, served or shed.
func (p *overloadPhase) offeredRate() float64 {
	if p.duration <= 0 {
		return 0
	}
	return float64(p.requests) / p.duration.Seconds()
}

func (p *overloadPhase) servedRate() float64 {
	if p.duration <= 0 {
		return 0
	}
	return float64(p.served) / p.duration.Seconds()
}

func (p *overloadPhase) report(name string) {
	fmt.Printf("%-9s %6d req  %6d served  %5d hits (%d degraded)  %5d shed  %4d 502  %3d unexpected  %8.0f served/s  hit-p99 %v\n",
		name, p.requests, p.served, p.hits, p.degraded, p.shedTotal(), p.upstream, p.unexpected,
		p.servedRate(), p.hitLat.Percentile(99).Round(time.Microsecond))
}

func runOverload(cfg overloadConfig) {
	// The upstream sleeps for real so healthy capacity is genuinely
	// upstream-bound (~100 ms per miss): the outage phase then offers a
	// large multiple of it even on a small CI machine. Latencies are cut
	// well below llmsim's paper-faithful defaults to keep the run short.
	sim := llmsim.New(llmsim.Config{
		BaseLatency: 75 * time.Millisecond,
		PerToken:    2 * time.Millisecond,
		JitterFrac:  0.1,
		MaxTokens:   50,
		Sleep:       true,
		Seed:        cfg.seed,
	})

	gov := resilience.NewGovernor(resilience.GovernorConfig{
		// The limiter starts at its ceiling (no cold-start throttling of
		// the healthy baseline) and adapts downward under congestion.
		Limiter: resilience.LimiterConfig{
			MinLimit: 4, MaxLimit: 32, InitialLimit: 32, MaxQueue: 32,
		},
		Breaker: resilience.BreakerConfig{
			Window: 20, FailureRatio: 0.5,
			OpenFor: 400 * time.Millisecond, HalfOpenProbes: 3,
		},
		MaintenanceWeight: 2,
	})
	guard := resilience.NewGuard(sim, gov, 0)

	enc := embed.NewModel(embed.MPNetSim, cfg.seed)
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards: 8,
		Factory: func(userID string) *core.Client {
			return core.New(core.Options{
				Encoder: enc,
				LLM:     guard,
				// τ below the serving default: the untrained encoder must
				// produce a healthy duplicate hit rate for cache-only
				// serving to have anything to serve.
				Tau:              0.70,
				TopK:             5,
				Capacity:         4096,
				FeedbackStep:     0.01,
				DegradedTauDelta: 0.10,
				MaintenanceGate:  gov.Maintenance,
			})
		},
	})
	if err != nil {
		log.Fatalf("overload: registry: %v", err)
	}
	obsReg := obs.NewRegistry()
	srv, err := server.New(server.Config{Registry: reg, Metrics: obsReg, Governor: gov})
	if err != nil {
		log.Fatalf("overload: server: %v", err)
	}
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	// Workloads: each user's probes are drawn in one pass so every phase
	// sees the same duplicate mix, then split baseline / brownout /
	// outage (factor× volume) / heal.
	rng := rand.New(rand.NewSource(cfg.seed))
	var warmup, baseline, brownout, outage, heal []job
	for u := 0; u < cfg.users; u++ {
		wcfg := dataset.DefaultConfig()
		wcfg.Seed = cfg.seed + int64(u)*7919
		w := dataset.GenerateCacheWorkload(wcfg, cfg.cached, cfg.probes*(cfg.factor+3), cfg.dup)
		user := fmt.Sprintf("user-%04d", u)
		for _, q := range w.Cached {
			warmup = append(warmup, job{user: user, text: q})
		}
		for i, p := range w.Probes {
			j := job{user: user, text: p.Text, dup: p.DupOf >= 0, probe: true}
			switch {
			case i < cfg.probes:
				baseline = append(baseline, j)
			case i < 2*cfg.probes:
				brownout = append(brownout, j)
			case i < (2+cfg.factor)*cfg.probes:
				outage = append(outage, j)
			default:
				heal = append(heal, j)
			}
		}
	}
	for _, js := range [][]job{warmup, baseline, brownout, outage, heal} {
		rng.Shuffle(len(js), func(i, j int) { js[i], js[j] = js[j], js[i] })
	}

	d := &overloadDriver{client: &http.Client{Timeout: cfg.timeout}, base: hts.URL}

	log.Printf("overload scenario: %d users, %d workers healthy, %d probes/user/phase, outage at %d× volume",
		cfg.users, cfg.concurrency, cfg.probes, cfg.factor)
	warm := newOverloadPhase()
	d.drive(warmup, cfg.concurrency, warm)
	if warm.served != warm.requests {
		log.Fatalf("overload: warmup not fully served (%d/%d, first: %s)",
			warm.served, warm.requests, warm.firstBad)
	}

	log.Printf("baseline (healthy): %d probes at %d workers", len(baseline), cfg.concurrency)
	base := newOverloadPhase()
	d.drive(baseline, cfg.concurrency, base)
	capacity := base.servedRate()

	// Brown-out: the upstream slows 4× while the offered load jumps to
	// factor× the healthy worker pool — the limiter, not a queue, must
	// absorb the difference.
	sim.SetSlowdown(4)
	brownWorkers := cfg.factor * cfg.concurrency
	log.Printf("brown-out (upstream 4× slower): %d probes at %d workers", len(brownout), brownWorkers)
	brown := newOverloadPhase()
	d.drive(brownout, brownWorkers, brown)
	brownScrape := scrapeGovernor(d.client, d.base)

	// Outage: the upstream fails outright. The worker pool is kept at a
	// moderate multiple — beyond CPU saturation extra closed-loop workers
	// only queue client-side — while the offered-load gate is asserted on
	// the measured rate, which must still reach factor× capacity because
	// shed responses return in microseconds, not upstream milliseconds.
	sim.SetFailing(true)
	outageWorkers := 3 * cfg.concurrency
	log.Printf("outage (upstream failing): %d probes at %d workers", len(outage), outageWorkers)
	out := newOverloadPhase()
	d.drive(outage, outageWorkers, out)
	outScrape := scrapeGovernor(d.client, d.base)

	// Heal: the upstream recovers; after the breaker's cool-off its
	// half-open probes must see the recovery and re-close it. The breaker
	// is primed back to closed with a trickle of sequential probes before
	// the measured phase — production traffic arriving after an upstream
	// heals finds the breaker already re-closed by the requests before it,
	// and the gate is that full serving then resumes.
	sim.SetFailing(false)
	sim.SetSlowdown(1)
	primeAttempts, recovered := d.waitRecovered(10 * time.Second)
	log.Printf("heal (upstream recovered): breaker re-closed after %d probes (ok=%v); %d probes at %d workers",
		primeAttempts, recovered, len(heal), cfg.concurrency)
	rec := newOverloadPhase()
	d.drive(heal, cfg.concurrency, rec)
	endScrape := scrapeGovernor(d.client, d.base)

	fmt.Printf("\n=== overload degraded-serving report (%d users, capacity %.0f served/s) ===\n",
		cfg.users, capacity)
	base.report("baseline")
	brown.report("brownout")
	out.report("outage")
	rec.report("heal")
	if brownScrape.ok {
		fmt.Printf("limiter          limit %.0f after brown-out (%.0f decreases), saturated sheds %d\n",
			brownScrape.limiterLimit, brownScrape.limiterDecreases, brown.sheds["saturated"])
	}
	if outScrape.ok {
		fmt.Printf("breaker          state %s during outage, %.0f trips, breaker_open sheds %d, degraded hits %.0f\n",
			breakerStateName(outScrape.breakerState), outScrape.breakerOpens,
			out.sheds["breaker_open"], outScrape.degradedHits)
	}
	if endScrape.ok {
		fmt.Printf("after heal       breaker state %s\n", breakerStateName(endScrape.breakerState))
	}

	unexpected := warm.unexpected + base.unexpected + brown.unexpected + out.unexpected + rec.unexpected
	firstBad := warm.firstBad
	for _, s := range []string{base.firstBad, brown.firstBad, out.firstBad, rec.firstBad} {
		if firstBad == "" {
			firstBad = s
		}
	}
	baseP99 := base.hitLat.Percentile(99)
	outP99 := out.hitLat.Percentile(99)
	gates := []struct {
		name   string
		pass   bool
		detail string
	}{
		{"clean run", unexpected == 0,
			fmt.Sprintf("%d unexpected errors (first: %s)", unexpected, firstBad)},
		{"healthy baseline", base.served == base.requests && base.shedTotal() == 0,
			fmt.Sprintf("%d/%d served, %d shed", base.served, base.requests, base.shedTotal())},
		{"offered load", out.offeredRate() >= float64(cfg.factor)*capacity,
			fmt.Sprintf("%.0f req/s = %.1f× capacity (gate ≥ %d×)",
				out.offeredRate(), out.offeredRate()/capacity, cfg.factor)},
		{"limiter brown-out", brown.sheds["saturated"] > 0,
			fmt.Sprintf("%d saturated sheds", brown.sheds["saturated"])},
		{"served throughput", out.servedRate() >= cfg.retention*capacity,
			fmt.Sprintf("%.0f served/s vs capacity %.0f (gate ≥ %.0f%%)",
				out.servedRate(), capacity, 100*cfg.retention)},
		{"hit-path p99", baseP99 > 0 && outP99 < time.Duration(cfg.latencyX*float64(baseP99)),
			fmt.Sprintf("%v under outage vs %v unloaded (gate < %.0f×)", outP99, baseP99, cfg.latencyX)},
		{"breaker trips", outScrape.ok && outScrape.breakerOpens >= 1 &&
			outScrape.breakerState >= 1 && out.sheds["breaker_open"] > 0,
			fmt.Sprintf("%.0f trips, state %s, %d breaker_open sheds",
				outScrape.breakerOpens, breakerStateName(outScrape.breakerState), out.sheds["breaker_open"])},
		{"cache-only serving", out.hits > 0,
			fmt.Sprintf("%d hits served during the outage (%d degraded)", out.hits, out.degraded)},
		{"breaker recovers", recovered && endScrape.ok && endScrape.breakerState == 0 &&
			rec.served == rec.requests && rec.upstream == 0,
			fmt.Sprintf("re-closed after %d probes, state %s after heal, %d/%d served, %d upstream errors",
				primeAttempts, breakerStateName(endScrape.breakerState), rec.served, rec.requests, rec.upstream)},
	}
	fail := false
	for _, g := range gates {
		verdict := "PASS"
		if !g.pass {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("%s %-18s %s\n", verdict, g.name, g.detail)
	}
	if cfg.accept && fail {
		fmt.Println("ACCEPT FAIL: the degraded-serving gate did not hold")
		os.Exit(1)
	}
	if cfg.accept {
		fmt.Printf("ACCEPT PASS: served %.0f/s through a dead upstream at %.1f× offered load\n",
			out.servedRate(), out.offeredRate()/capacity)
	}
}

// overloadDriver is the closed-loop worker pool, classifying every
// response by the structured error contract rather than treating
// non-200s uniformly as failures.
type overloadDriver struct {
	client *http.Client
	base   string
}

func (d *overloadDriver) drive(jobs []job, concurrency int, st *overloadPhase) {
	start := time.Now()
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				d.one(j, st)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	st.duration = time.Since(start)
}

func (d *overloadDriver) one(j job, st *overloadPhase) {
	body, _ := json.Marshal(server.QueryRequest{User: j.user, Query: j.text})
	resp, err := d.client.Post(d.base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		st.fail(fmt.Sprintf("transport: %v", err))
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			st.fail(fmt.Sprintf("decoding response: %v", err))
			return
		}
		st.mu.Lock()
		st.requests++
		st.served++
		if qr.Hit {
			st.hits++
			if qr.Degraded {
				st.degraded++
			}
			// Server-reported serving time: the hit-path gate must measure
			// the hit path, not client-side queueing in this process.
			st.hitLat.Record(time.Duration(qr.LatencyMicros) * time.Microsecond)
		}
		st.mu.Unlock()
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var er server.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		code := er.Code
		if code == "" {
			code = fmt.Sprintf("status_%d", resp.StatusCode)
		}
		st.mu.Lock()
		st.requests++
		st.sheds[code]++
		st.mu.Unlock()
	case http.StatusBadGateway:
		// A genuine upstream failure that reached the upstream — expected
		// only in the trip window before the breaker opens.
		st.mu.Lock()
		st.requests++
		st.upstream++
		st.mu.Unlock()
	default:
		st.fail(fmt.Sprintf("status %d", resp.StatusCode))
	}
}

// waitRecovered drives the breaker's half-open recovery with sequential
// unique-miss probes from a dedicated tenant, returning once /metrics
// reports the breaker closed (or the deadline expires). Probes that land
// while the breaker is still in its cool-off shed instantly, so the loop
// paces itself.
func (d *overloadDriver) waitRecovered(deadline time.Duration) (attempts int, ok bool) {
	start := time.Now()
	for time.Since(start) < deadline {
		if g := scrapeGovernor(d.client, d.base); g.ok && g.breakerState == 0 {
			return attempts, true
		}
		attempts++
		body, _ := json.Marshal(server.QueryRequest{
			User:  "heal-probe",
			Query: fmt.Sprintf("recovery probe %d", attempts),
		})
		if resp, err := d.client.Post(d.base+"/v1/query", "application/json", bytes.NewReader(body)); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(20 * time.Millisecond)
	}
	return attempts, false
}

// govScrape is one /metrics snapshot of the governor's state, the
// authoritative surface the acceptance gates assert breaker behaviour
// against.
type govScrape struct {
	ok               bool
	breakerState     float64 // 0 closed, 1 half-open, 2 open
	breakerOpens     float64
	degradedHits     float64
	limiterLimit     float64
	limiterDecreases float64
}

func scrapeGovernor(client *http.Client, base string) govScrape {
	var g govScrape
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return g
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		return g
	}
	exp, err := obs.ParseExposition(payload)
	if err != nil {
		return g
	}
	value := func(name string) float64 {
		if fam := exp.Families[name]; fam != nil && len(fam.Samples) > 0 {
			return fam.Samples[0].Value
		}
		return 0
	}
	g.breakerState = value("meancache_breaker_state")
	g.breakerOpens = value("meancache_breaker_opens_total")
	g.degradedHits = value("meancache_degraded_hits_total")
	g.limiterLimit = value("meancache_limiter_limit")
	g.limiterDecreases = value("meancache_limiter_decreases_total")
	g.ok = true
	return g
}

func breakerStateName(code float64) string {
	switch code {
	case 0:
		return "closed"
	case 1:
		return "half_open"
	default:
		return "open"
	}
}
