package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/llmsim"
	"repro/internal/metrics"
	"repro/internal/server"
)

// The cluster scenario is the failover acceptance run: it spins an
// N-node cacheserve cluster inside this process (internal/cluster's
// harness — real loopback HTTP between nodes, virtual-time upstream),
// warms a tenant population, checkpoints to shared storage, measures a
// steady-state probe phase, then kills one node abruptly partway into a
// second phase and measures again. The gate: zero lost tenants (every
// tenant still answers after failover) and duplicate-probe hit rate in
// the post-kill phase retaining ≥ 90% of the steady-state rate.

// clusterConfig carries the -cluster-* flags (plus the shared workload
// knobs).
type clusterConfig struct {
	nodes       int
	vnodes      int
	killIndex   int // node killed mid-phase-2 (-1 = no kill)
	users       int
	cached      int
	probes      int // per phase, per user
	dup         float64
	concurrency int
	seed        int64
	timeout     time.Duration
	accept      bool
	retention   float64 // dup-hit-rate retention floor for the gate
}

// phaseStats aggregates one measured probe phase.
type phaseStats struct {
	mu       sync.Mutex
	queries  int
	hits     int
	dups     int
	dupHits  int
	errors   int
	latency  metrics.LatencyRecorder
	duration time.Duration
}

func (p *phaseStats) record(dup, hit bool, lat time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queries++
	if hit {
		p.hits++
	}
	if dup {
		p.dups++
		if hit {
			p.dupHits++
		}
	}
	p.latency.Record(lat)
}

func (p *phaseStats) dupHitRate() float64 {
	if p.dups == 0 {
		return 0
	}
	return float64(p.dupHits) / float64(p.dups)
}

func (p *phaseStats) report(name string) {
	hitRate := 0.0
	if p.queries > 0 {
		hitRate = float64(p.hits) / float64(p.queries)
	}
	fmt.Printf("%-14s %5d probes  %4d errors  hit %5.1f%%  dup-hit %5.1f%% (%d/%d)  p50 %v  p99 %v  (%.1f qps)\n",
		name, p.queries, p.errors, 100*hitRate, 100*p.dupHitRate(), p.dupHits, p.dups,
		p.latency.Percentile(50).Round(time.Microsecond),
		p.latency.Percentile(99).Round(time.Microsecond),
		float64(p.queries)/p.duration.Seconds())
}

func runCluster(cfg clusterConfig) {
	dir, err := os.MkdirTemp("", "loadgen-cluster-*")
	if err != nil {
		log.Fatalf("cluster: temp persist dir: %v", err)
	}
	defer os.RemoveAll(dir)

	// One shared encoder and virtual-time upstream: encoders are
	// concurrency-safe once training stops, and sharing keeps an
	// in-process 3-node cluster cheap enough for CI.
	enc := embed.NewModel(embed.MPNetSim, cfg.seed)
	llm := llmsim.New(llmsim.DefaultConfig())

	log.Printf("cluster scenario: %d nodes (%d vnodes), %d users, %d+%d probes/user, kill node %d mid-phase-2",
		cfg.nodes, cfg.vnodes, cfg.users, cfg.probes, cfg.probes, cfg.killIndex)
	h, err := cluster.StartHarness(cluster.HarnessConfig{
		Nodes:      cfg.nodes,
		VNodes:     cfg.vnodes,
		Heartbeat:  50 * time.Millisecond,
		DeadAfter:  3,
		DrainWait:  2 * time.Second,
		SweepEvery: 200 * time.Millisecond,
		MakeNode: func(self string) (*server.Registry, *server.Server, error) {
			reg, err := server.NewRegistry(server.RegistryConfig{
				Shards:     8,
				PersistDir: dir, // shared — the harness's stand-in for shared storage
				Factory: func(userID string) *core.Client {
					return core.New(core.Options{
						Encoder: enc,
						LLM:     llm,
						// τ sits below the serving default: the scenario
						// runs the untrained encoder, and the retention
						// gate needs a healthy duplicate hit rate to
						// measure degradation against.
						Tau:          0.70,
						TopK:         5,
						Capacity:     4096,
						FeedbackStep: 0.01,
					})
				},
			})
			if err != nil {
				return nil, nil, err
			}
			srv, err := server.New(server.Config{Registry: reg})
			if err != nil {
				return nil, nil, err
			}
			return reg, srv, nil
		},
	})
	if err != nil {
		log.Fatalf("cluster: starting harness: %v", err)
	}
	defer h.Close()
	if err := h.WaitConverged(10 * time.Second); err != nil {
		log.Fatalf("cluster: %v", err)
	}

	// Workloads: one per user, 2×probes so both phases see the same
	// per-user dup mix (probes are pre-shuffled by the generator).
	rng := rand.New(rand.NewSource(cfg.seed))
	var warmup, phase1, phase2 []job
	for u := 0; u < cfg.users; u++ {
		wcfg := dataset.DefaultConfig()
		wcfg.Seed = cfg.seed + int64(u)*7919
		w := dataset.GenerateCacheWorkload(wcfg, cfg.cached, 2*cfg.probes, cfg.dup)
		user := fmt.Sprintf("user-%04d", u)
		for _, q := range w.Cached {
			warmup = append(warmup, job{user: user, text: q})
		}
		for i, p := range w.Probes {
			j := job{user: user, text: p.Text, dup: p.DupOf >= 0, probe: true}
			if i < cfg.probes {
				phase1 = append(phase1, j)
			} else {
				phase2 = append(phase2, j)
			}
		}
	}
	for _, jobs := range [][]job{warmup, phase1, phase2} {
		rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	}

	d := &clusterDriver{h: h, client: &http.Client{Timeout: cfg.timeout}}

	log.Printf("warmup: %d queries across %d entry nodes", len(warmup), cfg.nodes)
	warmStats := &phaseStats{}
	d.drive(warmup, cfg.concurrency, warmStats, nil)
	if warmStats.errors > 0 {
		log.Fatalf("cluster: %d warmup errors", warmStats.errors)
	}
	// Checkpoint: the durability boundary the abrupt kill is measured
	// against (production would run this on a timer).
	if err := h.Checkpoint(); err != nil {
		log.Fatalf("cluster: checkpoint: %v", err)
	}

	log.Printf("phase 1 (steady state): %d probes", len(phase1))
	p1 := &phaseStats{}
	d.drive(phase1, cfg.concurrency, p1, nil)

	log.Printf("phase 2 (failover): %d probes, killing node %d after 25%%", len(phase2), cfg.killIndex)
	p2 := &phaseStats{}
	var killAt func(dispatched int)
	var killed atomic.Bool
	if cfg.killIndex >= 0 && cfg.killIndex < cfg.nodes {
		killAfter := max(1, len(phase2)/4)
		killAt = func(dispatched int) {
			if dispatched == killAfter && killed.CompareAndSwap(false, true) {
				go func() {
					log.Printf("killing node %d (%s) abruptly", cfg.killIndex, h.Nodes()[cfg.killIndex].Addr)
					h.Kill(cfg.killIndex, false)
				}()
			}
		}
	}
	d.drive(phase2, cfg.concurrency, p2, killAt)
	if killAt != nil && !killed.Load() {
		log.Fatal("cluster: the mid-run kill never fired — the failover result would be meaningless")
	}

	// Lost-tenant audit: after the ring heals, every tenant must answer.
	if err := h.WaitConverged(10 * time.Second); err != nil {
		log.Fatalf("cluster: post-kill convergence: %v", err)
	}
	lost := 0
	for u := 0; u < cfg.users; u++ {
		user := fmt.Sprintf("user-%04d", u)
		if _, _, err := d.post("/v1/query", server.QueryRequest{User: user, Query: "post-failover liveness probe"}, u); err != nil {
			lost++
			if lost == 1 {
				log.Printf("lost tenant %s: %v", user, err)
			}
		}
	}

	fmt.Printf("\n=== cluster failover report (%d nodes, %d vnodes, %d tenants) ===\n",
		cfg.nodes, cfg.vnodes, cfg.users)
	p1.duration = max(p1.duration, time.Millisecond)
	p2.duration = max(p2.duration, time.Millisecond)
	p1.report("steady state")
	p2.report("failover")
	retention := 0.0
	if p1.dupHitRate() > 0 {
		retention = p2.dupHitRate() / p1.dupHitRate()
	}
	fmt.Printf("hit-rate retention  %.1f%% of steady state (gate ≥ %.0f%%)\n", 100*retention, 100*cfg.retention)
	fmt.Printf("lost tenants        %d of %d (gate 0)\n", lost, cfg.users)
	for _, hn := range h.Nodes() {
		if !hn.Alive() {
			fmt.Printf("node %s          killed\n", hn.Addr)
			continue
		}
		st := hn.ClusterNode().StatusSnapshot()
		fmt.Printf("node %s  resident %-4d forwards %-5d fwd-errors %-3d hedges %-3d fallbacks %-3d handoffs %-3d drains-busy %d\n",
			hn.Addr, st.Resident, st.Forwards, st.ForwardErrors, st.Hedges, st.LocalFallbacks, st.Handoffs, st.HandoffBusy)
	}

	if cfg.accept {
		fail := false
		if lost > 0 {
			fmt.Printf("ACCEPT FAIL: %d tenants lost after failover\n", lost)
			fail = true
		}
		if retention < cfg.retention {
			fmt.Printf("ACCEPT FAIL: hit-rate retention %.3f < %.2f\n", retention, cfg.retention)
			fail = true
		}
		if p2.errors > 0 {
			fmt.Printf("ACCEPT FAIL: %d request errors during failover phase\n", p2.errors)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
		fmt.Printf("ACCEPT PASS: survived node kill with %.1f%% retention and no lost tenants\n", 100*retention)
	}
}

// clusterDriver is the multi-entry closed-loop worker pool: each request
// enters through a live node (round-robin) and retries through a
// different entry if the connection itself fails — client-side endpoint
// failover, so a dying entry node costs latency, not errors.
type clusterDriver struct {
	h      *cluster.Harness
	client *http.Client
	rr     atomic.Int64
}

// post sends one request with entry failover, returning the decoded
// response and the wall time of the winning attempt.
func (d *clusterDriver) post(path string, body any, salt int) (server.QueryResponse, time.Duration, error) {
	var qr server.QueryResponse
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		urls := d.h.LiveURLs()
		if len(urls) == 0 {
			return qr, 0, fmt.Errorf("no live entry nodes")
		}
		entry := urls[(int(d.rr.Add(1))+salt+attempt)%len(urls)]
		start := time.Now()
		qr2, status, err := postJSONStatus(d.client, entry+path, body)
		if err == nil {
			return qr2, time.Since(start), nil
		}
		lastErr = err
		if status != 0 {
			// The cluster answered with an error status — not an entry
			// failure, so another entry would answer the same.
			return qr, time.Since(start), err
		}
	}
	return qr, 0, lastErr
}

// drive pushes jobs through the pool, invoking onDispatch (when set)
// with the running dispatch count — how the failover phase triggers its
// mid-run kill.
func (d *clusterDriver) drive(jobs []job, concurrency int, stats *phaseStats, onDispatch func(int)) {
	start := time.Now()
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range ch {
				qr, rtt, err := d.post("/v1/query", server.QueryRequest{User: j.user, Query: j.text}, w)
				if err != nil {
					stats.mu.Lock()
					stats.errors++
					first := stats.errors == 1
					stats.mu.Unlock()
					if first {
						log.Printf("request error (first): %v", err)
					}
					continue
				}
				if j.probe {
					lat := rtt
					if sim := time.Duration(qr.LatencyMicros) * time.Microsecond; sim > lat {
						lat = sim
					}
					stats.record(j.dup, qr.Hit, lat)
				}
			}
		}(w)
	}
	for i, j := range jobs {
		ch <- j
		if onDispatch != nil {
			onDispatch(i + 1)
		}
	}
	close(ch)
	wg.Wait()
	stats.duration = time.Since(start)
}

// postJSONStatus posts body and decodes a QueryResponse; status is 0
// when the failure was transport-level (retryable on another entry).
func postJSONStatus(client *http.Client, url string, body any) (server.QueryResponse, int, error) {
	var qr server.QueryResponse
	raw, err := json.Marshal(body)
	if err != nil {
		return qr, 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return qr, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return qr, resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return qr, resp.StatusCode, json.NewDecoder(resp.Body).Decode(&qr)
}
