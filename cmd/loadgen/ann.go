package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/metrics"
)

// The ann scenario measures the large-cache index tiers directly — no
// server in the loop, because at hundreds of thousands of entries the
// encode and HTTP costs would drown the quantity under test. It builds a
// clustered synthetic corpus, indexes it under each requested
// implementation, and reports build time, search latency percentiles and
// recall@k against the exact Flat ground truth, plus the speedup the
// acceptance gate cares about (HNSW ≥ 5× Flat at recall@10 ≥ 0.95 on a
// 200k corpus).

// annConfig carries the -ann-* flags.
type annConfig struct {
	n       int
	dim     int
	queries int
	k       int
	seed    int64
	indexes string // csv: flat,ivf,hnsw,hnsw8,adaptive
	m       int
	efCons  int
	ef      int
	accept  bool // enforce the acceptance gate via exit code
}

// annIndex is one measured implementation.
type annIndex struct {
	name  string
	idx   index.Index
	build time.Duration
	lat   metrics.LatencyRecorder
	// recall bookkeeping vs Flat ground truth
	inter, truth int
}

func runANN(cfg annConfig) {
	rng := rand.New(rand.NewSource(cfg.seed))
	fmt.Printf("=== ann scenario: %d vectors × %d dims, %d queries, k=%d ===\n",
		cfg.n, cfg.dim, cfg.queries, cfg.k)

	// Clustered corpus — the geometry both IVF and HNSW's diversity
	// heuristic are built for, and what real query embeddings look like
	// (intents form clusters).
	nClusters := 256
	if nClusters > cfg.n/16 && cfg.n >= 32 {
		nClusters = cfg.n / 16
	}
	if nClusters < 1 {
		nClusters = 1
	}
	corpus := dataset.ClusteredVectors(rng, cfg.n, nClusters, cfg.dim, 0.35)
	// Queries perturb random corpus points: near-duplicate probes, the
	// semantic-cache access pattern.
	queries := make([][]float32, cfg.queries)
	for i := range queries {
		queries[i] = dataset.PerturbUnit(rng, corpus[rng.Intn(len(corpus))], 0.2)
	}

	var runs []*annIndex
	for _, name := range strings.Split(cfg.indexes, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		idx, err := annBuildIndex(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ann: %v\n", err)
			os.Exit(2)
		}
		runs = append(runs, &annIndex{name: name, idx: idx})
	}
	if len(runs) == 0 || runs[0].name != "flat" {
		fmt.Fprintln(os.Stderr, "ann: the index list must start with flat (the ground truth)")
		os.Exit(2)
	}

	for _, r := range runs {
		start := time.Now()
		for id, v := range corpus {
			if err := r.idx.Add(id, v); err != nil {
				fmt.Fprintf(os.Stderr, "ann: %s add: %v\n", r.name, err)
				os.Exit(2)
			}
		}
		if a, ok := r.idx.(*index.Adaptive); ok {
			a.WaitMigration() // charge tier promotion to build, not search
		}
		if ivf, ok := r.idx.(*index.IVF); ok {
			ivf.Train() // re-cluster on the full corpus, not the bootstrap sample
		}
		r.build = time.Since(start)
		fmt.Printf("built %-8s %8d entries in %v\n", r.name, r.idx.Len(), r.build.Round(time.Millisecond))
	}

	// Warm up, then measure each index on every query. The timed flat
	// search doubles as the ground truth for that query, so the exact
	// scan — the most expensive index here — runs exactly once per probe.
	for _, r := range runs {
		r.idx.Search(queries[0], cfg.k, -1)
	}
	for _, q := range queries {
		start := time.Now()
		truth := runs[0].idx.Search(q, cfg.k, -1)
		runs[0].lat.Record(time.Since(start))
		truthIDs := make(map[int]bool, len(truth))
		for _, h := range truth {
			truthIDs[h.ID] = true
		}
		runs[0].truth += len(truth)
		runs[0].inter += len(truth)
		for _, r := range runs[1:] {
			start := time.Now()
			hits := r.idx.Search(q, cfg.k, -1)
			r.lat.Record(time.Since(start))
			r.truth += len(truth)
			for _, h := range hits {
				if truthIDs[h.ID] {
					r.inter++
				}
			}
		}
	}

	flatMean := runs[0].lat.Mean()
	fmt.Printf("\n%-8s %10s %10s %10s %10s %9s %9s\n",
		"index", "mean", "p50", "p99", "qps", "recall@k", "speedup")
	for _, r := range runs {
		recall := 1.0
		if r.truth > 0 {
			recall = float64(r.inter) / float64(r.truth)
		}
		mean := r.lat.Mean()
		speedup := float64(flatMean) / float64(mean)
		fmt.Printf("%-8s %10v %10v %10v %10.0f %9.3f %8.1fx\n",
			r.name,
			mean.Round(time.Microsecond),
			r.lat.Percentile(50).Round(time.Microsecond),
			r.lat.Percentile(99).Round(time.Microsecond),
			1/mean.Seconds(),
			recall,
			speedup)
	}

	// Acceptance gate: the first hnsw-family run must be ≥5× Flat at
	// recall@k ≥ 0.95.
	for _, r := range runs {
		if r.name != "hnsw" && r.name != "hnsw8" && r.name != "adaptive" {
			continue
		}
		recall := float64(r.inter) / float64(max(r.truth, 1))
		speedup := float64(flatMean) / float64(r.lat.Mean())
		ok := recall >= 0.95 && speedup >= 5
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		fmt.Printf("\nacceptance (%s): speedup %.1fx (need ≥5x), recall@%d %.3f (need ≥0.95) — %s\n",
			r.name, speedup, cfg.k, recall, verdict)
		if cfg.accept && !ok {
			os.Exit(1)
		}
		break
	}
}

// annBuildIndex maps a scenario index name to a fresh instance.
func annBuildIndex(name string, cfg annConfig) (index.Index, error) {
	hnswCfg := index.HNSWConfig{
		M: cfg.m, EfConstruction: cfg.efCons, EfSearch: cfg.ef, Seed: cfg.seed,
	}
	switch name {
	case "flat":
		return index.NewFlat(cfg.dim), nil
	case "ivf":
		nlist := int(math.Sqrt(float64(cfg.n))) + 1
		return index.NewIVF(cfg.dim, index.IVFConfig{
			NList: nlist, NProbe: max(nlist/16, 8), Seed: cfg.seed,
		}), nil
	case "hnsw":
		return index.NewHNSW(cfg.dim, hnswCfg), nil
	case "hnsw8":
		hnswCfg.Quantized = true
		return index.NewHNSW(cfg.dim, hnswCfg), nil
	case "adaptive":
		return index.NewAdaptive(cfg.dim, index.AdaptiveConfig{HNSW: hnswCfg}), nil
	default:
		return nil, fmt.Errorf("unknown index %q (want flat, ivf, hnsw, hnsw8 or adaptive)", name)
	}
}
