// Package repro_test hosts the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation (§IV), so
//
//	go test -bench=. -benchmem
//
// regenerates every result at the quick scale, and
//
//	go run ./cmd/benchrunner
//
// regenerates them at the paper scale. Benchmarks report domain metrics
// (F-scores, false hits, storage, search latency) via b.ReportMetric, so a
// single bench run doubles as a results table.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchfix"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embed"
	"repro/internal/experiments"
	"repro/internal/llmsim"
	"repro/internal/server"
)

// lab is shared across benchmarks; building it (FL-training two encoders)
// is itself part of the first benchmark that needs it.
var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func sharedLab() *experiments.Lab {
	labOnce.Do(func() {
		lab = experiments.NewLab(experiments.QuickConfig())
	})
	return lab
}

// BenchmarkTable1Standalone regenerates Table I's standalone block: the
// 1000-cached/1000-probe protocol for GPTCache and MeanCache variants.
func BenchmarkTable1Standalone(b *testing.B) {
	l := sharedLab()
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table1(l)
	}
	gpt, mpnet := res.Standalone[0], res.Standalone[1]
	b.ReportMetric(gpt.Scores.FScore, "gptcache-F0.5")
	b.ReportMetric(mpnet.Scores.FScore, "meancache-F0.5")
	b.ReportMetric(mpnet.Scores.Precision, "meancache-precision")
}

// BenchmarkTable1Contextual regenerates Table I's contextual block
// (the §IV-C 450-query protocol).
func BenchmarkTable1Contextual(b *testing.B) {
	l := sharedLab()
	var res *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table1(l)
	}
	gpt, mean := res.Contextual[0], res.Contextual[1]
	b.ReportMetric(gpt.Scores.FScore, "gptcache-F0.5")
	b.ReportMetric(mean.Scores.FScore, "meancache-F0.5")
}

// BenchmarkFig4UserStudy regenerates the 20-participant study streams and
// their analysis.
func BenchmarkFig4UserStudy(b *testing.B) {
	l := sharedLab()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.Fig4(l).MeanRatio
	}
	b.ReportMetric(100*ratio, "dup-ratio-%")
}

// BenchmarkFig5ResponseTimes regenerates the three response-time series.
func BenchmarkFig5ResponseTimes(b *testing.B) {
	l := sharedLab()
	var res *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5(l)
	}
	mean := func(lat []time.Duration) float64 {
		var sum float64
		for _, d := range lat {
			sum += d.Seconds()
		}
		return sum / float64(len(lat)) * 1000
	}
	mc := res.Series[2].Latencies
	b.ReportMetric(mean(mc[res.DupStart:]), "meancache-dup-ms")
	b.ReportMetric(mean(res.Series[0].Latencies[res.DupStart:]), "nocache-dup-ms")
}

// BenchmarkFig6Labels regenerates the per-query hit/miss strips.
func BenchmarkFig6Labels(b *testing.B) {
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig6(l)
	}
}

// BenchmarkFig7Confusion regenerates the standalone confusion matrices.
func BenchmarkFig7Confusion(b *testing.B) {
	l := sharedLab()
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig7(l)
	}
	b.ReportMetric(float64(res.MeanCache.FP), "meancache-false-hits")
	b.ReportMetric(float64(res.GPTCache.FP), "gptcache-false-hits")
}

// BenchmarkFig8Contextual regenerates the contextual label strips and
// confusion matrices (Figures 8–9).
func BenchmarkFig8Contextual(b *testing.B) {
	l := sharedLab()
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig8(l)
	}
	count := func(v []bool) float64 {
		n := 0.0
		for _, x := range v {
			if x {
				n++
			}
		}
		return n
	}
	b.ReportMetric(count(res.NonDupMean), "meancache-false-hits")
	b.ReportMetric(count(res.NonDupGPT), "gptcache-false-hits")
}

// BenchmarkFig10Compression regenerates the storage/search/F-score grid.
func BenchmarkFig10Compression(b *testing.B) {
	l := sharedLab()
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig10(l)
	}
	b.ReportMetric(res.SavingsPct, "storage-saving-%")
	b.ReportMetric(res.SpeedupPct, "search-speedup-%")
}

// BenchmarkFig11FLMPNet regenerates the MPNet FL curve (training happens
// once in the shared lab; the benchmark measures curve extraction plus the
// amortised training cost on first run).
func BenchmarkFig11FLMPNet(b *testing.B) {
	l := sharedLab()
	var res *experiments.FLCurveResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig11(l)
	}
	last := res.Curve[len(res.Curve)-1].Scores
	b.ReportMetric(last.FScore, "final-F1")
	b.ReportMetric(last.Precision, "final-precision")
}

// BenchmarkFig12FLAlbert regenerates the Albert FL curve.
func BenchmarkFig12FLAlbert(b *testing.B) {
	l := sharedLab()
	var res *experiments.FLCurveResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig12(l)
	}
	b.ReportMetric(res.Curve[len(res.Curve)-1].Scores.FScore, "final-F1")
}

// BenchmarkFig13SweepMPNet regenerates the MPNet threshold sweep.
func BenchmarkFig13SweepMPNet(b *testing.B) {
	l := sharedLab()
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig13(l)
	}
	b.ReportMetric(res.Sweep.Optimal.Tau, "optimal-tau")
	b.ReportMetric(res.Sweep.Optimal.Scores.FScore, "optimal-F1")
}

// BenchmarkFig14SweepAlbert regenerates the Albert threshold sweep.
func BenchmarkFig14SweepAlbert(b *testing.B) {
	l := sharedLab()
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig14(l)
	}
	b.ReportMetric(res.Sweep.Optimal.Tau, "optimal-tau")
}

// BenchmarkFig15EmbedCost regenerates the embedding cost comparison.
func BenchmarkFig15EmbedCost(b *testing.B) {
	l := sharedLab()
	var res *experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig15(l)
	}
	b.ReportMetric(res.Rows[0].EncodeTime.Seconds()*1e6, "llama-encode-us")
	b.ReportMetric(res.Rows[1].EncodeTime.Seconds()*1e6, "mpnet-encode-us")
}

// BenchmarkFig16SweepLlama regenerates the frozen-Llama threshold sweep.
func BenchmarkFig16SweepLlama(b *testing.B) {
	l := sharedLab()
	var res *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		res = experiments.Fig16(l)
	}
	b.ReportMetric(res.Sweep.Optimal.Scores.FScore, "llama-optimal-F1")
}

// BenchmarkEndToEndQuery measures the deployed per-query path: encode,
// search a 1000-entry cache, and decide — the overhead MeanCache adds to
// every LLM query (Figure 5's unique region).
func BenchmarkEndToEndQuery(b *testing.B) {
	l := sharedLab()
	tm := l.Trained(embed.MPNetSim)
	w := dataset.GenerateCacheWorkload(l.Cfg.Corpus, 1000, 64, 0.3)
	sys := experiments.NewMeanCacheSystem("bench", tm.Model, tm.Tau)
	llm := llmsim.New(llmsim.DefaultConfig())
	cached := make([]dataset.CtxQuery, len(w.Cached))
	for i, q := range w.Cached {
		cached[i] = dataset.CtxQuery{Text: q}
	}
	sys.Populate(cached, llm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := w.Probes[i%len(w.Probes)]
		sys.Probe(p.Text, nil, llm, false)
	}
}

// newBenchServer assembles the serving stack (internal/server) over HTTP:
// untrained MPNet-sim encoder behind the micro-batcher, virtual-time
// llmsim upstream.
func newBenchServer(b *testing.B) (*httptest.Server, *server.Batcher) {
	b.Helper()
	enc := embed.NewModel(embed.MPNetSim, 1)
	batcher := server.NewBatcher(enc, server.BatcherConfig{MaxBatch: 32, MaxWait: 100 * time.Microsecond})
	b.Cleanup(batcher.Close)
	llm := llmsim.New(llmsim.DefaultConfig())
	reg, err := server.NewRegistry(server.RegistryConfig{
		Shards: 16,
		Factory: func(string) *core.Client {
			return core.New(core.Options{Encoder: batcher, LLM: llm, Tau: 0.83, TopK: 5})
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Registry: reg, Batcher: batcher})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts, batcher
}

func benchQuery(b *testing.B, client *http.Client, url, user, query string) server.QueryResponse {
	body, _ := json.Marshal(server.QueryRequest{User: user, Query: query})
	resp, err := client.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		b.Fatal(err)
	}
	return qr
}

// BenchmarkServerSingleTenantHit measures the serving hot path end to end
// over HTTP: one tenant, a warmed cache, every request a hit — encode,
// search, respond. This is the per-request overhead the serving layer
// adds on top of BenchmarkEndToEndQuery's in-process path.
func BenchmarkServerSingleTenantHit(b *testing.B) {
	ts, _ := newBenchServer(b)
	queries := []string{
		"how does federated averaging aggregate client updates",
		"what storage does the embedding cache consume",
		"explain the context chain verification step",
		"why does quantisation preserve cosine ordering",
	}
	warm := http.Client{}
	for _, q := range queries {
		benchQuery(b, &warm, ts.URL, "tenant-0", q) // miss: populate
	}
	var hits atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		i := 0
		for pb.Next() {
			qr := benchQuery(b, client, ts.URL, "tenant-0", queries[i%len(queries)])
			if qr.Hit {
				hits.Add(1)
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(hits.Load())/float64(b.N), "hit-ratio")
}

// BenchmarkServerCrossTenantBatchedEncode measures concurrent multi-tenant
// serving throughput where every request needs an encode (distinct queries
// per tenant), so the micro-batcher's cross-tenant coalescing is on the
// critical path. The reported mean-batch metric tracks how well it packs.
func BenchmarkServerCrossTenantBatchedEncode(b *testing.B) {
	ts, batcher := newBenchServer(b)
	var user atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		u := fmt.Sprintf("tenant-%d", user.Add(1))
		i := 0
		for pb.Next() {
			benchQuery(b, client, ts.URL, u, fmt.Sprintf("distinct question %d for %s", i, u))
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(batcher.Stats().MeanBatch, "mean-batch")
}

// BenchmarkLargeCacheSearch compares the cache's similarity-search path
// across the index tiers at the shared benchfix large-tenant operating
// point (20k entries × 64 dims): the built-in parallel scan versus IVF,
// HNSW and the int8-quantized HNSW. This is the quantity the adaptive
// tiering trades on — the same FindSimilar call, orders of magnitude
// apart in work. cmd/benchrunner publishes the same measurements to
// BENCH_serving.json.
func BenchmarkLargeCacheSearch(b *testing.B) {
	for _, tier := range benchfix.LargeTenantTiers {
		b.Run(tier, func(b *testing.B) {
			c, probe, err := benchfix.LargeTenantCache(tier)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.FindSimilar(probe, 5, 0.8)
			}
		})
	}
}
